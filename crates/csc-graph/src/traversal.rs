//! Plain BFS primitives, brute-force oracles, and the reusable
//! [`TraversalWorkspace`] behind the dynamic-maintenance hot paths.
//!
//! The free functions ([`bfs_distances`], [`bfs_counts`], the oracles) are
//! deliberately simple, allocation-per-call implementations: the test
//! suites across the workspace use them as *ground truth* against which
//! the pruned/labeled algorithms are validated, so they must be obviously
//! correct rather than fast.
//!
//! [`TraversalWorkspace`] is the fast counterpart for callers that run
//! many endpoint sweeps per operation (deletion classification runs six
//! per deleted edge): a pool of epoch-versioned [`DistMap`]s whose clear
//! is `O(1)`, a preallocated FIFO, a [`bfs_bounded`] variant that stops at
//! the affected cone instead of exhausting the graph, and a recyclable
//! [`BucketQueue`] for the multi-source repair passes in `csc-core`.
//!
//! [`bfs_bounded`]: TraversalWorkspace::bfs_bounded

use crate::budget::{BudgetExceeded, OpBudget};
use crate::digraph::DiGraph;
use crate::vertex::VertexId;
use std::collections::VecDeque;

/// Sentinel distance for "not reached" in [`DistMap`] lookups.
pub const UNREACHED: u32 = u32::MAX;

/// An epoch-versioned distance array: `clear` is a counter bump, not a
/// fill, so a sweep over a tiny cone pays for the cone only.
///
/// Entries written in an older epoch read back as [`UNREACHED`]; the
/// stamp array makes that exact (no sentinel aliasing). The epoch counter
/// lives in the map itself, so maps are independent — a
/// [`TraversalWorkspace`] hands out several at once, all valid until the
/// pool is released.
#[derive(Clone, Debug, Default)]
pub struct DistMap {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    epoch: u32,
    /// Largest distance recorded this epoch (0 when nothing is set).
    max_dist: u32,
}

impl DistMap {
    /// Grows the map to cover at least `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.stamp.resize(n, 0);
        }
    }

    /// Starts a new epoch: previous contents become [`UNREACHED`], in O(1).
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Wrapped after 2^32 sweeps: hard-reset so stale stamps cannot
            // alias the new epoch.
            self.stamp.fill(0);
            self.epoch = 1;
        }
        self.max_dist = 0;
    }

    /// The recorded distance of `v`, or [`UNREACHED`].
    #[inline]
    pub fn get(&self, v: VertexId) -> u32 {
        let i = v.index();
        if self.stamp[i] == self.epoch {
            self.dist[i]
        } else {
            UNREACHED
        }
    }

    /// `true` if `v` was reached this epoch.
    #[inline]
    pub fn reached(&self, v: VertexId) -> bool {
        self.stamp[v.index()] == self.epoch
    }

    #[inline]
    fn set(&mut self, v: VertexId, d: u32) {
        let i = v.index();
        self.dist[i] = d;
        self.stamp[i] = self.epoch;
        self.max_dist = self.max_dist.max(d);
    }

    /// Largest finite distance recorded since the last [`clear`](Self::clear)
    /// — the source's eccentricity after a full sweep, and the natural
    /// truncation bound for a follow-up [`bfs_bounded`] over a shrunken
    /// graph (post-deletion distances at the surviving vertices either
    /// match the old ones or exceed this bound).
    ///
    /// [`bfs_bounded`]: TraversalWorkspace::bfs_bounded
    #[inline]
    pub fn max_dist(&self) -> u32 {
        self.max_dist
    }

    /// Heap bytes held by this map (distance + stamp arrays).
    pub fn heap_bytes(&self) -> usize {
        (self.dist.capacity() + self.stamp.capacity()) * std::mem::size_of::<u32>()
    }
}

/// A handle into a [`TraversalWorkspace`]'s map pool, returned by the
/// sweep methods. Plain index semantics: valid until the next
/// [`release_all`](TraversalWorkspace::release_all).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepHandle(usize);

/// A reusable pool of [`DistMap`]s plus a shared BFS queue.
///
/// Deletion repair needs several distance maps *alive at once* (pre- and
/// post-deletion sweeps from every affected endpoint), which rules out one
/// shared stamp array. The workspace instead pools whole maps: a sweep
/// claims the next free map (allocating only on first use at each depth),
/// and [`release_all`](Self::release_all) returns every map to the pool
/// without freeing — steady-state windows run allocation-free.
///
/// The epoch counters are owned by the individual maps; the workspace
/// never resets them behind a handle's back, so handles stay valid across
/// further sweeps until the explicit release. A snapshot/rebuild boundary
/// must not retain handles (the maps are sized for the *current* graph);
/// `csc-core` threads one workspace per live index and drops it with the
/// index, which enforces that by construction.
#[derive(Debug, Default)]
pub struct TraversalWorkspace {
    maps: Vec<DistMap>,
    /// Maps handed out since the last release.
    live: usize,
    queue: VecDeque<u32>,
    /// Vertex capacity maps are grown to on claim.
    n: usize,
    buckets: BucketQueue,
}

impl TraversalWorkspace {
    /// Creates a workspace for graphs of up to `n` vertices (grows on
    /// demand either way).
    pub fn new(n: usize) -> Self {
        TraversalWorkspace {
            n,
            ..Default::default()
        }
    }

    /// Grows the vertex capacity applied to subsequently claimed maps.
    pub fn ensure(&mut self, n: usize) {
        if self.n < n {
            self.n = n;
        }
    }

    /// Returns every claimed map to the pool. Outstanding
    /// [`SweepHandle`]s must not be used afterwards.
    pub fn release_all(&mut self) {
        self.live = 0;
    }

    /// Number of maps currently claimed.
    pub fn live(&self) -> usize {
        self.live
    }

    /// The reusable multi-source bucket queue (for `csc-core`'s repair
    /// passes; independent of the map pool).
    pub fn buckets_mut(&mut self) -> &mut BucketQueue {
        &mut self.buckets
    }

    /// Splits the workspace into a read-only view of the claimed maps and
    /// the mutable bucket queue, so a caller can consult earlier sweeps
    /// while running bucket-queue passes.
    pub fn split_mut(&mut self) -> (SweepMaps<'_>, &mut BucketQueue) {
        (SweepMaps { maps: &self.maps }, &mut self.buckets)
    }

    fn claim(&mut self) -> usize {
        if self.live == self.maps.len() {
            self.maps.push(DistMap::default());
        }
        let i = self.live;
        self.live += 1;
        self.maps[i].ensure(self.n);
        self.maps[i].clear();
        i
    }

    /// Full single-source BFS following edges forward (`true`) or
    /// backward, into a pooled map.
    pub fn bfs(&mut self, g: &DiGraph, src: VertexId, forward: bool) -> SweepHandle {
        self.bfs_bounded(g, src, forward, UNREACHED)
    }

    /// Single-source BFS truncated at distance `limit`: vertices farther
    /// than `limit` are left [`UNREACHED`].
    ///
    /// The intended use is cone-bounded re-classification: after a batch
    /// of deletions, a vertex's distance to an endpoint either equals its
    /// pre-deletion value or grew, so sweeping the *post* graph bounded by
    /// the pre-sweep's [`max_dist`](DistMap::max_dist) classifies every
    /// vertex exactly (found-and-equal = unchanged, found-and-larger or
    /// truncated = grown) without walking the long post-deletion tail.
    pub fn bfs_bounded(
        &mut self,
        g: &DiGraph,
        src: VertexId,
        forward: bool,
        limit: u32,
    ) -> SweepHandle {
        self.bfs_bounded_budgeted(g, src, forward, limit, &OpBudget::unbounded())
            .expect("unbounded budgets never expire")
    }

    /// [`bfs_bounded`](Self::bfs_bounded) with a cooperative cancellation
    /// checkpoint per dequeued vertex.
    ///
    /// On `Err(BudgetExceeded)` the partially written map is *un-claimed*:
    /// the caller's outstanding handles stay valid, pool occupancy is
    /// unchanged, and the next claim epoch-clears the abandoned contents —
    /// an aborted sweep costs nothing and corrupts nothing.
    pub fn bfs_bounded_budgeted(
        &mut self,
        g: &DiGraph,
        src: VertexId,
        forward: bool,
        limit: u32,
        budget: &OpBudget,
    ) -> Result<SweepHandle, BudgetExceeded> {
        self.ensure(g.vertex_count());
        let h = self.claim();
        let map = &mut self.maps[h];
        self.queue.clear();
        map.set(src, 0);
        self.queue.push_back(src.0);
        while let Some(w) = self.queue.pop_front() {
            if let Err(e) = budget.checkpoint() {
                // Roll the claim back: the abandoned map returns to the
                // pool and its stale contents die at the next epoch bump.
                self.live = h;
                return Err(e);
            }
            let dw = map.get(VertexId(w));
            if dw >= limit {
                continue;
            }
            let nbrs = if forward {
                g.nbr_out(VertexId(w))
            } else {
                g.nbr_in(VertexId(w))
            };
            for &u in nbrs {
                if !map.reached(VertexId(u)) {
                    map.set(VertexId(u), dw + 1);
                    self.queue.push_back(u);
                }
            }
        }
        Ok(SweepHandle(h))
    }

    /// Full single-source BFS with cooperative cancellation — see
    /// [`bfs_bounded_budgeted`](Self::bfs_bounded_budgeted) for the abort
    /// contract.
    pub fn bfs_budgeted(
        &mut self,
        g: &DiGraph,
        src: VertexId,
        forward: bool,
        budget: &OpBudget,
    ) -> Result<SweepHandle, BudgetExceeded> {
        self.bfs_bounded_budgeted(g, src, forward, UNREACHED, budget)
    }

    /// Approximate heap bytes held by the workspace: every pooled map
    /// (claimed or free), the shared FIFO, and the bucket queue. Feeds
    /// the engine-level memory budget accounting.
    pub fn heap_bytes(&self) -> usize {
        self.maps.iter().map(DistMap::heap_bytes).sum::<usize>()
            + self.queue.capacity() * std::mem::size_of::<u32>()
            + self.buckets.heap_bytes()
    }

    /// The map behind a handle.
    #[inline]
    pub fn map(&self, h: SweepHandle) -> &DistMap {
        &self.maps[h.0]
    }

    /// Full single-source BFS that records the *tree* (discovery parents)
    /// instead of distances — the sampling primitive behind the
    /// coverage-sampled hub order (see `order::coverage_sampling_order`).
    ///
    /// The visited set is a pooled [`DistMap`] claimed and recycled
    /// internally (no handle escapes), so repeated calls on one workspace
    /// run allocation-free apart from the returned tree itself. The tree
    /// is canonical: neighbors are scanned in adjacency order, so the
    /// result depends only on the graph, `src`, and `forward`.
    pub fn bfs_tree(&mut self, g: &DiGraph, src: VertexId, forward: bool) -> BfsTree {
        self.ensure(g.vertex_count());
        let live_before = self.live;
        let h = self.claim();
        let map = &mut self.maps[h];
        let mut nodes: Vec<u32> = vec![src.0];
        let mut parent: Vec<u32> = vec![u32::MAX];
        map.set(src, 0);
        let mut head = 0usize;
        while head < nodes.len() {
            let w = VertexId(nodes[head]);
            let dw = map.get(w);
            let nbrs = if forward { g.nbr_out(w) } else { g.nbr_in(w) };
            for &u in nbrs {
                if !map.reached(VertexId(u)) {
                    map.set(VertexId(u), dw + 1);
                    parent.push(head as u32);
                    nodes.push(u);
                }
            }
            head += 1;
        }
        // BFS appends each popped node's undiscovered neighbors
        // consecutively, so the children of node `i` occupy one contiguous
        // range and the (root-excluded) parent array is non-decreasing:
        // one scan derives every range.
        let len = nodes.len();
        let mut child_start = vec![0u32; len + 1];
        let mut j = 1usize;
        for (i, slot) in child_start.iter_mut().enumerate().take(len) {
            *slot = j as u32;
            while j < len && parent[j] as usize == i {
                j += 1;
            }
        }
        child_start[len] = len as u32;
        // The visited map was scratch only: un-claim it so the caller's
        // outstanding handles and pool occupancy are untouched.
        self.live = live_before;
        BfsTree {
            nodes,
            parent,
            child_start,
        }
    }
}

/// A single-source BFS tree in discovery order, built by
/// [`TraversalWorkspace::bfs_tree`].
///
/// Node `i` is the `i`-th discovered vertex (node 0 is the root). Parents
/// precede children, and each node's children occupy one contiguous index
/// range — the two structural facts the coverage-sampling order exploits
/// for linear-time subtree accumulation and stack-based subtree cuts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BfsTree {
    /// Vertex ids in discovery (BFS) order.
    nodes: Vec<u32>,
    /// Parent *node index* of each node; `u32::MAX` at the root.
    parent: Vec<u32>,
    /// `child_start[i]..child_start[i + 1]` are node `i`'s children.
    child_start: Vec<u32>,
}

impl BfsTree {
    /// Number of vertices reached (the root is always included).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` only for a default-constructed tree; a built tree always
    /// holds at least its root.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The vertex at node index `i`.
    #[inline]
    pub fn vertex(&self, i: usize) -> VertexId {
        VertexId(self.nodes[i])
    }

    /// The parent node index of node `i`, or `None` at the root.
    #[inline]
    pub fn parent(&self, i: usize) -> Option<usize> {
        let p = self.parent[i];
        (p != u32::MAX).then_some(p as usize)
    }

    /// The node-index range of node `i`'s children.
    #[inline]
    pub fn children(&self, i: usize) -> std::ops::Range<usize> {
        self.child_start[i] as usize..self.child_start[i + 1] as usize
    }
}

/// A read-only view of a [`TraversalWorkspace`]'s claimed maps (see
/// [`TraversalWorkspace::split_mut`]).
#[derive(Clone, Copy, Debug)]
pub struct SweepMaps<'a> {
    maps: &'a [DistMap],
}

impl<'a> SweepMaps<'a> {
    /// The map behind a handle; the reference lives as long as the view's
    /// borrow of the workspace, not the view value itself.
    #[inline]
    pub fn map(self, h: SweepHandle) -> &'a DistMap {
        &self.maps[h.0]
    }
}

/// A checkout pool of per-worker traversal workspaces for parallel
/// passes.
///
/// Parallel repair and build waves hand every worker its own
/// [`TraversalWorkspace`] (or any other scratch type, via the generic
/// parameter): a worker checks a workspace out, runs its traversals, and
/// the guard returns it on drop for the next task to reuse. Because the
/// pooled workspaces are epoch-stamped ([`DistMap`] reuse is a stamp
/// bump, not a fill), checkout is O(1) and steady-state waves run
/// allocation-free regardless of which worker previously used a given
/// workspace. The pool itself is `Sync`: checkouts only contend on one
/// short-lived lock around the free list.
#[derive(Debug, Default)]
pub struct WorkspacePool<T = TraversalWorkspace> {
    free: std::sync::Mutex<Vec<T>>,
}

impl<T> WorkspacePool<T> {
    /// Creates an empty pool; workspaces are built on first checkout.
    pub fn new() -> Self {
        WorkspacePool {
            free: std::sync::Mutex::new(Vec::new()),
        }
    }

    /// Checks out a pooled workspace, building a fresh one with `make`
    /// when the free list is empty. The guard returns it on drop.
    pub fn checkout_with(&self, make: impl FnOnce() -> T) -> PooledWorkspace<'_, T> {
        let ws = self.free.lock().unwrap().pop().unwrap_or_else(make);
        PooledWorkspace {
            pool: self,
            ws: Some(ws),
        }
    }
}

impl WorkspacePool<TraversalWorkspace> {
    /// Checks out a traversal workspace sized for `n` vertices.
    pub fn checkout(&self, n: usize) -> PooledWorkspace<'_, TraversalWorkspace> {
        let mut guard = self.checkout_with(|| TraversalWorkspace::new(n));
        guard.ensure(n);
        guard
    }
}

/// An exclusive loan of one pooled workspace (see [`WorkspacePool`]).
#[derive(Debug)]
pub struct PooledWorkspace<'a, T> {
    pool: &'a WorkspacePool<T>,
    ws: Option<T>,
}

impl<T> std::ops::Deref for PooledWorkspace<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl<T> std::ops::DerefMut for PooledWorkspace<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl<T> Drop for PooledWorkspace<'_, T> {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.free.lock().unwrap().push(ws);
        }
    }
}

/// A monotone bucket queue for multi-source unit-weight traversals,
/// recyclable across passes (bucket capacity is retained).
///
/// Levels are relative: the caller picks a base distance and pushes each
/// vertex at `distance - base`. Stale entries (superseded by a downward
/// relaxation) are the caller's concern — re-check the recorded distance
/// at pop, as `csc-core`'s repair passes do.
#[derive(Debug, Default)]
pub struct BucketQueue {
    levels: Vec<Vec<u32>>,
    /// Levels touched since the last reset (`levels[depth..]` are clean).
    depth: usize,
}

impl BucketQueue {
    /// Empties every touched level, keeping capacity.
    pub fn reset(&mut self) {
        for level in &mut self.levels[..self.depth] {
            level.clear();
        }
        self.depth = 0;
    }

    /// Pushes `v` onto `level`.
    pub fn push(&mut self, level: usize, v: u32) {
        if self.levels.len() <= level {
            self.levels.resize_with(level + 1, Vec::new);
        }
        self.levels[level].push(v);
        self.depth = self.depth.max(level + 1);
    }

    /// One past the deepest non-clean level.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Entries in `level` so far (grows while the level is iterated).
    #[inline]
    pub fn len_at(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// The `i`-th entry of `level`.
    #[inline]
    pub fn at(&self, level: usize, i: usize) -> u32 {
        self.levels[level][i]
    }

    /// Heap bytes held across all retained levels.
    pub fn heap_bytes(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.capacity() * std::mem::size_of::<u32>())
            .sum::<usize>()
            + self.levels.capacity() * std::mem::size_of::<Vec<u32>>()
    }
}

/// Unweighted single-source shortest distances; `None` marks unreachable.
pub fn bfs_distances(g: &DiGraph, src: VertexId) -> Vec<Option<u32>> {
    bfs_distances_dir(g, src, true)
}

/// Single-source distances following edges forward (`true`) or backward.
pub fn bfs_distances_dir(g: &DiGraph, src: VertexId, forward: bool) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.vertex_count()];
    dist[src.index()] = Some(0);
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(w) = queue.pop_front() {
        let dw = dist[w.index()].expect("queued vertices have distances");
        let nbrs = if forward { g.nbr_out(w) } else { g.nbr_in(w) };
        for &u in nbrs {
            if dist[u as usize].is_none() {
                dist[u as usize] = Some(dw + 1);
                queue.push_back(VertexId(u));
            }
        }
    }
    dist
}

/// Single-source shortest distances *and* shortest-path counts.
///
/// Counts use saturating arithmetic: in adversarial layered graphs the
/// number of shortest paths grows exponentially.
pub fn bfs_counts(g: &DiGraph, src: VertexId, forward: bool) -> Vec<(Option<u32>, u64)> {
    let n = g.vertex_count();
    let mut dist: Vec<Option<u32>> = vec![None; n];
    let mut count: Vec<u64> = vec![0; n];
    dist[src.index()] = Some(0);
    count[src.index()] = 1;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(w) = queue.pop_front() {
        let dw = dist[w.index()].expect("queued vertices have distances");
        let cw = count[w.index()];
        let nbrs = if forward { g.nbr_out(w) } else { g.nbr_in(w) };
        for &u in nbrs {
            let u = u as usize;
            match dist[u] {
                None => {
                    dist[u] = Some(dw + 1);
                    count[u] = cw;
                    queue.push_back(VertexId(u as u32));
                }
                Some(du) if du == dw + 1 => {
                    count[u] = count[u].saturating_add(cw);
                }
                Some(_) => {}
            }
        }
    }
    dist.into_iter().zip(count).collect()
}

/// Brute-force `SPCnt(s, t)`: `(shortest distance, number of shortest
/// paths)`, or `None` if `t` is unreachable from `s`.
pub fn sp_count_pair(g: &DiGraph, s: VertexId, t: VertexId) -> Option<(u32, u64)> {
    let res = bfs_counts(g, s, true);
    let (d, c) = res[t.index()];
    d.map(|d| (d, c))
}

/// Brute-force `SCCnt(v)`: `(shortest cycle length, number of shortest
/// cycles through v)`, or `None` if no cycle passes through `v`.
///
/// Decomposes each cycle by its unique first edge `v -> w`: a shortest
/// cycle of length `L` through `v` is an edge `v -> w` plus a shortest
/// `w ~> v` path of length `L - 1`, and distinct `(w, path)` pairs are in
/// bijection with distinct cycles. Cost is `O(out_degree(v) * (n + m))`.
pub fn shortest_cycle_oracle(g: &DiGraph, v: VertexId) -> Option<(u32, u64)> {
    let mut best: Option<(u32, u64)> = None;
    for &w in g.nbr_out(v) {
        if let Some((d, c)) = sp_count_pair(g, VertexId(w), v) {
            let len = d + 1;
            match &mut best {
                Some((bl, bc)) => {
                    if len < *bl {
                        *bl = len;
                        *bc = c;
                    } else if len == *bl {
                        *bc = bc.saturating_add(c);
                    }
                }
                None => best = Some((len, c)),
            }
        }
    }
    best
}

/// Vertices reachable from `src` (including `src`), as a boolean mask.
pub fn reachable_from(g: &DiGraph, src: VertexId) -> Vec<bool> {
    bfs_distances(g, src)
        .into_iter()
        .map(|d| d.is_some())
        .collect()
}

/// Brute-force all-pairs shortest distances (test-sized graphs only).
pub fn all_pairs_distances(g: &DiGraph) -> Vec<Vec<Option<u32>>> {
    g.vertices().map(|v| bfs_distances(g, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn distances_on_a_path() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, v(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        let back = bfs_distances_dir(&g, v(3), false);
        assert_eq!(back, vec![Some(3), Some(2), Some(1), Some(0)]);
    }

    #[test]
    fn unreachable_is_none() {
        let g = DiGraph::from_edges(3, vec![(0, 1)]);
        let d = bfs_distances(&g, v(0));
        assert_eq!(d[2], None);
    }

    #[test]
    fn counts_on_a_diamond() {
        // 0 -> {1, 2} -> 3: two shortest paths 0 ~> 3.
        let g = DiGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let res = bfs_counts(&g, v(0), true);
        assert_eq!(res[3], (Some(2), 2));
        assert_eq!(sp_count_pair(&g, v(0), v(3)), Some((2, 2)));
        // Backward from 3 matches.
        let res = bfs_counts(&g, v(3), false);
        assert_eq!(res[0], (Some(2), 2));
    }

    #[test]
    fn counts_ignore_longer_paths() {
        // 0 -> 1 -> 3 and 0 -> 2 -> 4 -> 3: only the length-2 path counts.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 3), (0, 2), (2, 4), (4, 3)]);
        assert_eq!(sp_count_pair(&g, v(0), v(3)), Some((2, 1)));
    }

    #[test]
    fn cycle_oracle_on_triangle_with_chord() {
        // Triangle 0->1->2->0 plus chord 0->2: shortest cycle through 0 has
        // length 2? No — no mutual edges here; cycles through 0:
        // 0->1->2->0 (len 3) and 0->2->0? no edge 2->0... there is (2,0).
        // 0->2->0 needs (0,2) and (2,0): both exist -> length 2.
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2), (2, 0), (0, 2)]);
        assert_eq!(shortest_cycle_oracle(&g, v(0)), Some((2, 1)));
        // Through vertex 1 the only cycle is the triangle.
        assert_eq!(shortest_cycle_oracle(&g, v(1)), Some((3, 1)));
    }

    #[test]
    fn cycle_oracle_none_on_dag() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (0, 2), (2, 3)]);
        for i in 0..4 {
            assert_eq!(shortest_cycle_oracle(&g, v(i)), None);
        }
    }

    #[test]
    fn cycle_oracle_counts_parallel_cycles() {
        // Two vertex-disjoint length-3 cycles through 0.
        let g = DiGraph::from_edges(5, vec![(0, 1), (1, 2), (2, 0), (0, 3), (3, 4), (4, 0)]);
        assert_eq!(shortest_cycle_oracle(&g, v(0)), Some((3, 2)));
    }

    #[test]
    fn figure2_cycle_counts_match_example_1() {
        // Example 1: SCCnt(v7) = 3 with cycle length 6.
        let g = crate::fixtures::figure2();
        let v7 = crate::fixtures::pv(7);
        assert_eq!(shortest_cycle_oracle(&g, v7), Some((6, 3)));
    }

    #[test]
    fn figure2_spcnt_matches_example_2_and_3() {
        let g = crate::fixtures::figure2();
        let pv = crate::fixtures::pv;
        // Example 2: SPCnt(v10, v8) = 3 with length 4.
        assert_eq!(sp_count_pair(&g, pv(10), pv(8)), Some((4, 3)));
        // Example 3: SPCnt(v7, v4) = 2 @ 5; (v7, v5) = 1 @ 5; (v7, v6) = 1 @ 6.
        assert_eq!(sp_count_pair(&g, pv(7), pv(4)), Some((5, 2)));
        assert_eq!(sp_count_pair(&g, pv(7), pv(5)), Some((5, 1)));
        assert_eq!(sp_count_pair(&g, pv(7), pv(6)), Some((6, 1)));
    }

    #[test]
    fn reachability_mask() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2)]);
        assert_eq!(reachable_from(&g, v(0)), vec![true, true, true, false]);
    }

    #[test]
    fn workspace_sweeps_match_plain_bfs() {
        let g = crate::generators::gnm(30, 90, 5);
        let mut ws = TraversalWorkspace::new(g.vertex_count());
        for src in [v(0), v(7), v(29)] {
            for forward in [true, false] {
                let h = ws.bfs(&g, src, forward);
                let reference = bfs_distances_dir(&g, src, forward);
                let mut max = 0;
                for x in g.vertices() {
                    let got = ws.map(h).get(x);
                    match reference[x.index()] {
                        Some(d) => {
                            assert_eq!(got, d, "{src}->{x} fwd={forward}");
                            max = max.max(d);
                        }
                        None => assert_eq!(got, UNREACHED),
                    }
                }
                assert_eq!(ws.map(h).max_dist(), max);
            }
        }
        // Six sweeps claimed six maps; release recycles them all.
        assert_eq!(ws.live(), 6);
        ws.release_all();
        assert_eq!(ws.live(), 0);
        let h = ws.bfs(&g, v(3), true);
        assert_eq!(ws.live(), 1);
        assert_eq!(ws.map(h).get(v(3)), 0);
    }

    #[test]
    fn pooled_maps_stay_valid_together() {
        // Two concurrent sweeps must not clobber each other.
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut ws = TraversalWorkspace::new(4);
        let fwd = ws.bfs(&g, v(0), true);
        let bwd = ws.bfs(&g, v(0), false);
        assert_eq!(ws.map(fwd).get(v(3)), 3);
        assert_eq!(ws.map(bwd).get(v(3)), 1);
    }

    #[test]
    fn bounded_bfs_truncates_at_the_limit() {
        let g = DiGraph::from_edges(6, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let mut ws = TraversalWorkspace::new(6);
        let h = ws.bfs_bounded(&g, v(0), true, 2);
        assert_eq!(ws.map(h).get(v(2)), 2, "the limit itself is recorded");
        assert_eq!(ws.map(h).get(v(3)), UNREACHED, "beyond the limit is not");
        assert_eq!(ws.map(h).max_dist(), 2);
    }

    #[test]
    fn bfs_tree_shape_on_a_diamond() {
        // 0 -> {1, 2} -> 3: node order 0, 1, 2, 3; 3 is discovered via 1.
        let g = DiGraph::from_edges(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut ws = TraversalWorkspace::new(4);
        let t = ws.bfs_tree(&g, v(0), true);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(
            (0..4).map(|i| t.vertex(i).0).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(1), Some(0));
        assert_eq!(t.parent(2), Some(0));
        assert_eq!(t.parent(3), Some(1), "first discovery wins");
        assert_eq!(t.children(0), 1..3);
        assert_eq!(t.children(1), 3..4);
        assert_eq!(t.children(2), 4..4);
        assert_eq!(t.children(3), 4..4);
        // The scratch map was recycled: no live handles remain.
        assert_eq!(ws.live(), 0);
        // Backward tree from 3 mirrors the structure.
        let b = ws.bfs_tree(&g, v(3), false);
        assert_eq!(b.vertex(0), v(3));
        assert_eq!(b.len(), 4);
        assert_eq!(b.parent(3), Some(1), "0 discovered via 1 (adjacency order)");
    }

    #[test]
    fn bfs_tree_matches_bfs_distances() {
        let g = crate::generators::gnm(40, 120, 9);
        let mut ws = TraversalWorkspace::new(g.vertex_count());
        for src in [v(0), v(13), v(39)] {
            for forward in [true, false] {
                let t = ws.bfs_tree(&g, src, forward);
                let reference = bfs_distances_dir(&g, src, forward);
                let reached = reference.iter().filter(|d| d.is_some()).count();
                assert_eq!(t.len(), reached, "tree spans exactly the reachable set");
                // Depth along parent pointers equals the BFS distance.
                for i in 0..t.len() {
                    let mut depth = 0u32;
                    let mut a = i;
                    while let Some(p) = t.parent(a) {
                        depth += 1;
                        a = p;
                    }
                    assert_eq!(Some(depth), reference[t.vertex(i).index()]);
                }
                // Child ranges partition 1..len and invert parent().
                let mut seen = vec![false; t.len()];
                for i in 0..t.len() {
                    for c in t.children(i) {
                        assert!(!seen[c]);
                        seen[c] = true;
                        assert_eq!(t.parent(c), Some(i));
                    }
                }
                assert!(seen[1..].iter().all(|&s| s));
            }
        }
    }

    #[test]
    fn aborted_sweep_leaves_the_workspace_reusable() {
        use crate::budget::OpBudget;
        use std::time::Duration;

        let g = crate::generators::gnm(30, 90, 5);
        let mut ws = TraversalWorkspace::new(g.vertex_count());
        // A live handle claimed before the abort must survive it.
        let held = ws.bfs(&g, v(7), true);
        let held_snapshot: Vec<u32> = g.vertices().map(|x| ws.map(held).get(x)).collect();

        let expired = OpBudget::within(Duration::ZERO);
        assert_eq!(
            ws.bfs_budgeted(&g, v(0), true, &expired),
            Err(crate::budget::BudgetExceeded)
        );
        assert_eq!(ws.live(), 1, "the aborted claim was rolled back");
        for (x, want) in g.vertices().zip(&held_snapshot) {
            assert_eq!(ws.map(held).get(x), *want, "held handle untouched");
        }

        // The recycled map is epoch-cleared: the next sweep over it is
        // exact despite the abandoned partial contents.
        let h = ws.bfs(&g, v(0), true);
        let reference = bfs_distances_dir(&g, v(0), true);
        for x in g.vertices() {
            match reference[x.index()] {
                Some(d) => assert_eq!(ws.map(h).get(x), d),
                None => assert_eq!(ws.map(h).get(x), UNREACHED),
            }
        }
    }

    #[test]
    fn budgeted_sweep_with_headroom_matches_unbudgeted() {
        use crate::budget::OpBudget;
        use std::time::Duration;

        let g = crate::generators::gnm(25, 70, 11);
        let mut ws = TraversalWorkspace::new(g.vertex_count());
        let budget = OpBudget::within(Duration::from_secs(3600)).with_stride(1);
        let h = ws.bfs_budgeted(&g, v(3), false, &budget).unwrap();
        let reference = bfs_distances_dir(&g, v(3), false);
        for x in g.vertices() {
            match reference[x.index()] {
                Some(d) => assert_eq!(ws.map(h).get(x), d),
                None => assert_eq!(ws.map(h).get(x), UNREACHED),
            }
        }
        assert!(ws.heap_bytes() > 0);
    }

    #[test]
    fn distmap_epoch_clear_is_exact() {
        let mut m = DistMap::default();
        m.ensure(3);
        m.clear();
        m.set(v(1), 7);
        assert_eq!(m.get(v(1)), 7);
        assert!(m.reached(v(1)));
        assert_eq!(m.max_dist(), 7);
        m.clear();
        assert_eq!(m.get(v(1)), UNREACHED);
        assert!(!m.reached(v(1)));
        assert_eq!(m.max_dist(), 0);
    }

    #[test]
    fn bucket_queue_recycles_capacity() {
        let mut q = BucketQueue::default();
        q.push(2, 9);
        q.push(0, 4);
        q.push(2, 5);
        assert_eq!(q.depth(), 3);
        assert_eq!(q.len_at(0), 1);
        assert_eq!(q.len_at(1), 0);
        assert_eq!((q.at(2, 0), q.at(2, 1)), (9, 5));
        q.reset();
        assert_eq!(q.depth(), 0);
        q.push(1, 3);
        assert_eq!(q.depth(), 2);
        assert_eq!(q.len_at(0), 0, "reset cleared the old level 0");
        assert_eq!(q.at(1, 0), 3);
    }
}
