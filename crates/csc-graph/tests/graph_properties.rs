//! Property tests for the graph substrate's structural invariants.

use csc_graph::bipartite::{self, BipartiteGraph};
use csc_graph::generators;
use csc_graph::traversal::{bfs_counts, bfs_distances, shortest_cycle_oracle};
use csc_graph::{Csr, DiGraph, VertexId};
use proptest::prelude::*;

/// An arbitrary edit script over a fixed vertex set.
fn arb_edits() -> impl Strategy<Value = (usize, Vec<(u8, u8, bool)>)> {
    (3usize..24).prop_flat_map(|n| {
        let edits = proptest::collection::vec((0..n as u8, 0..n as u8, any::<bool>()), 0..60);
        (Just(n), edits)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The mirrored adjacency invariant survives any edit script.
    #[test]
    fn digraph_invariants_under_edits((n, edits) in arb_edits()) {
        let mut g = DiGraph::new(n);
        let mut model: std::collections::BTreeSet<(u8, u8)> = Default::default();
        for (u, v, insert) in edits {
            let (a, b) = (VertexId(u as u32), VertexId(v as u32));
            if insert {
                let ok = g.try_add_edge(a, b).is_ok();
                prop_assert_eq!(ok, u != v && model.insert((u, v)));
            } else {
                let ok = g.try_remove_edge(a, b).is_ok();
                prop_assert_eq!(ok, model.remove(&(u, v)));
            }
        }
        prop_assert_eq!(g.edge_count(), model.len());
        prop_assert!(g.validate().is_ok(), "{:?}", g.validate());
        // Degrees are consistent with the model.
        for v in 0..n as u8 {
            let out = model.iter().filter(|&&(u, _)| u == v).count();
            let inn = model.iter().filter(|&&(_, w)| w == v).count();
            prop_assert_eq!(g.out_degree(VertexId(v as u32)), out);
            prop_assert_eq!(g.in_degree(VertexId(v as u32)), inn);
        }
    }

    /// CSR snapshots agree with the dynamic graph on every adjacency.
    #[test]
    fn csr_equals_digraph(seed in any::<u64>(), n in 2usize..40) {
        let m = (seed as usize) % (n * (n - 1) + 1);
        let g = generators::gnm(n, m, seed);
        let c = Csr::from_digraph(&g);
        prop_assert_eq!(c.vertex_count(), g.vertex_count());
        prop_assert_eq!(c.edge_count(), g.edge_count());
        for v in g.vertices() {
            prop_assert_eq!(c.nbr_out(v), g.nbr_out(v));
            prop_assert_eq!(c.nbr_in(v), g.nbr_in(v));
        }
    }

    /// Distances in the bipartite conversion are exactly doubled (+parity).
    #[test]
    fn bipartite_distances_double(seed in any::<u64>(), n in 2usize..20) {
        let m = (seed as usize) % (n * (n - 1) / 2 + 1);
        let g = generators::gnm(n, m, seed);
        let gb = BipartiteGraph::from_graph(&g);
        prop_assert!(gb.validate().is_ok());
        for s in g.vertices() {
            let d_orig = bfs_distances(&g, s);
            let d_bi = bfs_distances(gb.graph(), bipartite::out_vertex(s));
            for t in g.vertices() {
                if s == t { continue; }
                // sd_G(s, t) = k  <=>  sd_Gb(s_o, t_i) = 2k - 1.
                let want = d_orig[t.index()].map(|k| 2 * k - 1);
                prop_assert_eq!(
                    d_bi[bipartite::in_vertex(t).index()], want,
                    "pair ({}, {})", s, t
                );
            }
        }
    }

    /// Shortest-cycle counts in G equal shortest v_o ~> v_i path counts in Gb.
    #[test]
    fn cycle_counts_transfer_to_bipartite(seed in any::<u64>(), n in 2usize..16) {
        let m = (seed as usize) % (n * (n - 1) / 2 + 1);
        let g = generators::gnm(n, m, seed);
        let gb = BipartiteGraph::from_graph(&g);
        for v in g.vertices() {
            let cyc = shortest_cycle_oracle(&g, v);
            let res = bfs_counts(gb.graph(), bipartite::out_vertex(v), true);
            let (d, c) = res[bipartite::in_vertex(v).index()];
            let via_gb = d.map(|d| (d.div_ceil(2), c));
            prop_assert_eq!(cyc, via_gb, "SCCnt({})", v);
        }
    }

    /// Forward counting equals backward counting on the reverse graph.
    #[test]
    fn counting_direction_symmetry(seed in any::<u64>(), n in 2usize..20) {
        let m = (seed as usize) % (n * (n - 1) / 2 + 1);
        let g = generators::gnm(n, m, seed);
        let r = g.reversed();
        for s in g.vertices() {
            let fwd = bfs_counts(&g, s, true);
            let rev = bfs_counts(&r, s, false);
            prop_assert_eq!(fwd, rev, "source {}", s);
        }
    }

    /// Generators always produce valid simple graphs.
    #[test]
    fn generators_always_valid(seed in any::<u64>()) {
        let pa = generators::preferential_attachment(80, 3, 0.4, seed);
        prop_assert!(pa.validate().is_ok());
        let sw = generators::small_world(50, 2, 0.3, seed);
        prop_assert!(sw.validate().is_ok());
        let er = generators::gnm(30, 100, seed);
        prop_assert!(er.validate().is_ok());
        prop_assert_eq!(er.edge_count(), 100);
    }
}
