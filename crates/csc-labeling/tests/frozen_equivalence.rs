//! Property-based proof that the two label layouts and the two
//! intersection kernels are observationally identical:
//!
//! * [`FrozenLabels`] answers `dist_count` exactly like the [`Labels`] it
//!   was frozen from, for every vertex pair;
//! * the adaptive kernel ([`intersect_adaptive`]: branchless merge +
//!   galloping) equals the reference two-pointer [`intersect`] on
//!   arbitrary — including pathologically skewed — sorted lists;
//! * `SCCnt` agrees between the live `CscIndex` path and the frozen
//!   `SnapshotIndex` path across randomized dynamic workloads.

use csc_core::{CscConfig, CscIndex};
use csc_graph::generators::gnm;
use csc_graph::VertexId;
use csc_labeling::frozen::GALLOP_SKEW;
use csc_labeling::labels::intersect;
use csc_labeling::{intersect_adaptive, FrozenLabels, LabelEntry, LabelSide, LabelStore, Labels};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Builds one vertex's sorted label list from a hub -> (dist, count) map.
fn list_from(map: &BTreeMap<u32, (u32, u64)>) -> Vec<LabelEntry> {
    map.iter()
        .map(|(&h, &(d, c))| LabelEntry::new(h, d, c).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Freezing preserves every slice and every pairwise query.
    #[test]
    fn frozen_matches_nested_on_random_label_stores(
        sides in proptest::collection::vec(
            proptest::collection::btree_map(0u32..48, (0u32..60, 1u64..9), 0..14),
            2..12,
        )
    ) {
        // Interpret consecutive map pairs as one vertex's (in, out) lists.
        let n = sides.len() / 2;
        let mut labels = Labels::new(n);
        for v in 0..n {
            for (side, map) in [
                (LabelSide::In, &sides[2 * v]),
                (LabelSide::Out, &sides[2 * v + 1]),
            ] {
                for e in list_from(map) {
                    labels.upsert(VertexId(v as u32), side, e);
                }
            }
        }
        let frozen = FrozenLabels::freeze(&labels);
        prop_assert_eq!(LabelStore::vertex_count(&frozen), n);
        prop_assert_eq!(LabelStore::total_entries(&frozen), labels.total_entries());
        for v in 0..n as u32 {
            let v = VertexId(v);
            prop_assert_eq!(LabelStore::in_of(&frozen, v), labels.in_of(v));
            prop_assert_eq!(LabelStore::out_of(&frozen, v), labels.out_of(v));
        }
        for s in 0..n as u32 {
            for t in 0..n as u32 {
                let (s, t) = (VertexId(s), VertexId(t));
                prop_assert_eq!(
                    LabelStore::dist_count(&frozen, s, t),
                    labels.dist_count(s, t),
                    "dist_count({}, {})", s, t
                );
            }
        }
    }

    /// The adaptive kernel equals the reference kernel on arbitrary list
    /// shapes, in both argument orders.
    #[test]
    fn adaptive_kernel_matches_reference(
        a in proptest::collection::btree_map(0u32..64, (0u32..40, 1u64..9), 0..20),
        b in proptest::collection::btree_map(0u32..64, (0u32..40, 1u64..9), 0..20),
    ) {
        let (la, lb) = (list_from(&a), list_from(&b));
        let want = intersect(&la, &lb);
        prop_assert_eq!(intersect_adaptive(&la, &lb), want);
        prop_assert_eq!(intersect_adaptive(&lb, &la), want);
    }

    /// Same, but with both lists long enough to take the dual-chain merge
    /// path (shorter side >= DUAL_CHAIN_MIN, skew < GALLOP_SKEW).
    #[test]
    fn adaptive_kernel_matches_reference_on_long_balanced_lists(
        stride_a in 1u32..4,
        stride_b in 1u32..4,
        len_a in 40usize..160,
        len_b in 40usize..160,
        salt in any::<u32>(),
    ) {
        let la: Vec<LabelEntry> = (0..len_a as u32)
            .map(|i| LabelEntry::new(i * stride_a, (i ^ salt) % 30 + 1, (i % 6 + 1) as u64).unwrap())
            .collect();
        let lb: Vec<LabelEntry> = (0..len_b as u32)
            .map(|i| LabelEntry::new(i * stride_b, (i.wrapping_add(salt)) % 30 + 1, (i % 4 + 1) as u64).unwrap())
            .collect();
        prop_assert!(la.len().min(lb.len()) >= csc_labeling::frozen::DUAL_CHAIN_MIN);
        let want = intersect(&la, &lb);
        prop_assert!(want.is_some(), "strided lists always share hub 0");
        prop_assert_eq!(intersect_adaptive(&la, &lb), want);
        prop_assert_eq!(intersect_adaptive(&lb, &la), want);
    }

    /// Same, but with sizes forced across the galloping threshold: a short
    /// probe list against a long dense one.
    #[test]
    fn adaptive_kernel_matches_reference_on_skewed_lists(
        short in proptest::collection::btree_map(0u32..1024, (0u32..40, 1u64..9), 1..5),
        long_stride in 1u32..5,
        long_len in 64usize..256,
    ) {
        let long: Vec<LabelEntry> = (0..long_len as u32)
            .map(|i| LabelEntry::new(i * long_stride, (i % 13) + 1, (i % 4 + 1) as u64).unwrap())
            .collect();
        let short = list_from(&short);
        prop_assert!(long.len() >= GALLOP_SKEW * short.len(), "must exercise galloping");
        let want = intersect(&short, &long);
        prop_assert_eq!(intersect_adaptive(&short, &long), want);
        prop_assert_eq!(intersect_adaptive(&long, &short), want);
    }

    /// Distance *and* count of `SCCnt(v)` agree between the live nested
    /// path (`CscIndex::query`) and the frozen snapshot path
    /// (`SnapshotIndex::query`) across a randomized dynamic workload, with
    /// a snapshot taken after every update.
    #[test]
    fn sccnt_agrees_between_live_and_frozen_paths(
        n in 6usize..18,
        m_seed in any::<u64>(),
        ops in proptest::collection::vec((any::<u64>(), any::<bool>()), 1..14),
    ) {
        let m = (m_seed as usize) % (n * (n - 1) / 2 + 1);
        let mut index = CscIndex::build(&gnm(n, m, m_seed), CscConfig::default()).unwrap();

        let check_all = |index: &CscIndex| -> Result<(), TestCaseError> {
            let snap = index.freeze();
            for v in 0..n as u32 {
                let v = VertexId(v);
                prop_assert_eq!(snap.query(v), index.query(v), "SCCnt({})", v);
                prop_assert_eq!(snap.query_raw(v), index.query_raw(v), "raw({})", v);
            }
            Ok(())
        };
        check_all(&index)?;

        for (seed, insert) in ops {
            if insert {
                // Derive a fresh non-edge deterministically from the seed.
                let mut s = seed;
                for _ in 0..20 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = VertexId((s % n as u64) as u32);
                    let b = VertexId(((s >> 17) % n as u64) as u32);
                    if a != b && !index.contains_edge(a, b) {
                        index.insert_edge(a, b).unwrap();
                        break;
                    }
                }
            } else {
                let edges: Vec<_> = index.original_edges().collect();
                if edges.is_empty() {
                    continue;
                }
                let (a, b) = edges[(seed % edges.len() as u64) as usize];
                index.remove_edge(a, b).unwrap();
            }
            check_all(&index)?;
        }
    }
}

/// Galloping edge cases pinned as deterministic unit tests (the ISSUE's
/// checklist: empty, disjoint, heavily skewed).
mod galloping_edges {
    use super::*;

    fn e(h: u32, d: u32, c: u64) -> LabelEntry {
        LabelEntry::new(h, d, c).unwrap()
    }

    #[test]
    fn empty_lists() {
        assert_eq!(intersect_adaptive(&[], &[]), None);
        let long: Vec<LabelEntry> = (0..100).map(|h| e(h, 1, 1)).collect();
        assert_eq!(intersect_adaptive(&long, &[]), None);
        assert_eq!(intersect_adaptive(&[], &long), None);
    }

    #[test]
    fn disjoint_skewed_lists() {
        // Short list entirely below, inside, and above the long list's
        // range — galloping must never report a phantom match.
        let long: Vec<LabelEntry> = (0..128).map(|h| e(2 * h + 100, 1, 1)).collect();
        for short in [
            vec![e(0, 1, 1), e(50, 1, 1)],        // below
            vec![e(101, 1, 1), e(103, 1, 1)],     // interleaved odd
            vec![e(1_000, 1, 1), e(2_000, 1, 1)], // above
        ] {
            assert_eq!(intersect_adaptive(&short, &long), None, "{short:?}");
            assert_eq!(intersect_adaptive(&long, &short), None, "{short:?}");
        }
    }

    #[test]
    fn single_probe_against_huge_list() {
        let long: Vec<LabelEntry> = (0..4096).map(|h| e(h, (h % 7) + 1, 2)).collect();
        // Matches at the very first, middle, and last positions.
        for h in [0u32, 2048, 4095] {
            let short = [e(h, 3, 5)];
            let got = intersect_adaptive(&short, &long).unwrap();
            let want = intersect(&short, &long).unwrap();
            assert_eq!(got, want, "probe at {h}");
        }
        // Just past the end: no match.
        assert_eq!(intersect_adaptive(&[e(4096, 1, 1)], &long), None);
    }

    #[test]
    fn matches_clustered_at_the_tail() {
        // Galloping restarts from the previous match position; clustered
        // tail matches exercise the position-carrying logic.
        let long: Vec<LabelEntry> = (0..512).map(|h| e(h, 1, 1)).collect();
        let short = [e(500, 1, 1), e(505, 2, 3), e(510, 1, 2), e(511, 4, 4)];
        assert_eq!(intersect_adaptive(&short, &long), intersect(&short, &long));
    }

    #[test]
    fn threshold_boundary_picks_a_correct_strategy_either_way() {
        // Exactly at and just below the skew threshold: both strategies
        // must agree, whichever gets chosen.
        let short: Vec<LabelEntry> = (0..4).map(|h| e(h * 16, 1, 1)).collect();
        for long_len in [GALLOP_SKEW * 4 - 1, GALLOP_SKEW * 4, GALLOP_SKEW * 4 + 1] {
            let long: Vec<LabelEntry> = (0..long_len as u32).map(|h| e(h, 1, 1)).collect();
            assert_eq!(
                intersect_adaptive(&short, &long),
                intersect(&short, &long),
                "long_len {long_len}"
            );
        }
    }
}
