//! Property tests for the labeling layer: packed-entry algebra, label-store
//! operations against a naive model, and HP-SPC exactness.

use csc_graph::generators::gnm;
use csc_graph::traversal::bfs_counts;
use csc_graph::{OrderingStrategy, VertexId};
use csc_labeling::{labels::intersect, HpSpcIndex, LabelEntry, LabelSide, Labels};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Packing roundtrips for every in-range field combination; counts
    /// saturate, never wrap.
    #[test]
    fn entry_roundtrip(
        hub in 0u32..=csc_labeling::MAX_HUB_RANK,
        dist in 0u32..=csc_labeling::MAX_DIST,
        count in any::<u64>(),
    ) {
        let e = LabelEntry::new(hub, dist, count).unwrap();
        prop_assert_eq!(e.hub_rank(), hub);
        prop_assert_eq!(e.dist(), dist);
        prop_assert_eq!(e.count(), count.min(csc_labeling::MAX_COUNT));
        prop_assert_eq!(LabelEntry::from_raw(e.raw()), e);
    }

    /// Out-of-range hubs and distances are rejected, never truncated.
    #[test]
    fn entry_overflow_rejected(extra in 1u32..1000) {
        prop_assert!(LabelEntry::new(csc_labeling::MAX_HUB_RANK + extra, 0, 0).is_err());
        prop_assert!(LabelEntry::new(0, csc_labeling::MAX_DIST + extra, 0).is_err());
    }

    /// The label store behaves like a sorted map keyed by hub rank.
    #[test]
    fn labels_match_btreemap_model(
        ops in proptest::collection::vec((0u32..40, 0u32..50, 1u64..9, any::<bool>()), 0..60)
    ) {
        let mut labels = Labels::new(1);
        let mut model: std::collections::BTreeMap<u32, LabelEntry> = Default::default();
        let v = VertexId(0);
        for (hub, dist, count, insert) in ops {
            if insert {
                let e = LabelEntry::new(hub, dist, count).unwrap();
                labels.upsert(v, LabelSide::In, e);
                model.insert(hub, e);
            } else {
                let removed = labels.remove(v, LabelSide::In, hub);
                prop_assert_eq!(removed, model.remove(&hub));
            }
        }
        let got: Vec<_> = labels.in_of(v).to_vec();
        let want: Vec<_> = model.values().copied().collect();
        prop_assert_eq!(got, want);
        prop_assert!(labels.validate_sorted().is_ok());
    }

    /// `intersect` equals a brute-force minimum over common hubs.
    #[test]
    fn intersect_matches_bruteforce(
        a in proptest::collection::btree_map(0u32..24, (0u32..30, 1u64..9), 0..12),
        b in proptest::collection::btree_map(0u32..24, (0u32..30, 1u64..9), 0..12),
    ) {
        let list_a: Vec<LabelEntry> = a.iter()
            .map(|(&h, &(d, c))| LabelEntry::new(h, d, c).unwrap()).collect();
        let list_b: Vec<LabelEntry> = b.iter()
            .map(|(&h, &(d, c))| LabelEntry::new(h, d, c).unwrap()).collect();

        let mut best: Option<(u32, u64)> = None;
        for (&h, &(da, ca)) in &a {
            if let Some(&(db, cb)) = b.get(&h) {
                let d = da + db;
                let c = ca * cb;
                best = Some(match best {
                    None => (d, c),
                    Some((bd, _bc)) if d < bd => (d, c),
                    Some((bd, bc)) if d == bd => (bd, bc + c),
                    Some(keep) => keep,
                });
            }
        }
        let got = intersect(&list_a, &list_b).map(|dc| (dc.dist, dc.count));
        prop_assert_eq!(got, best);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// HP-SPC distances and counts are exact on arbitrary graphs for every
    /// ordered pair — the foundation everything else builds on.
    #[test]
    fn hpspc_exact_on_arbitrary_graphs(seed in any::<u64>(), n in 2usize..22) {
        let m = (seed as usize) % (n * (n - 1) + 1);
        let g = gnm(n, m, seed);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        for s in g.vertices() {
            let truth = bfs_counts(&g, s, true);
            for t in g.vertices() {
                if s == t { continue; }
                let want = truth[t.index()].0.map(|d| (d, truth[t.index()].1));
                let got = idx.sp_count(s, t).map(|dc| (dc.dist, dc.count));
                prop_assert_eq!(got, want, "SPCnt({}, {})", s, t);
            }
        }
    }
}
