//! The query result type shared by every shortest-cycle algorithm.

/// The answer to a shortest-cycle counting query `SCCnt(v)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CycleCount {
    /// Length of the shortest cycles through the query vertex (>= 2).
    pub length: u32,
    /// Number of distinct shortest cycles through the query vertex
    /// (saturating at the index's 24-bit count capacity per label entry).
    pub count: u64,
}

impl CycleCount {
    /// Convenience constructor.
    pub fn new(length: u32, count: u64) -> Self {
        CycleCount { length, count }
    }
}

impl From<(u32, u64)> for CycleCount {
    fn from((length, count): (u32, u64)) -> Self {
        CycleCount { length, count }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let c = CycleCount::new(6, 3);
        assert_eq!(c, CycleCount::from((6, 3)));
        assert_eq!(c.length, 6);
        assert_eq!(c.count, 3);
    }
}
