//! Read-optimized frozen label storage and the adaptive intersection
//! kernel.
//!
//! [`Labels`] is built for maintenance: per-vertex `Vec`s that grow,
//! shrink, and splice cheaply. That layout is hostile to the read path —
//! every query chases two `Vec` headers to separately allocated blocks,
//! and entries of the vertices a cycle query touches together (`v_o`'s
//! out-list and `v_i`'s in-list) land far apart on the heap.
//!
//! [`FrozenLabels`] is the serving-side counterpart: one contiguous
//! CSR-style arena of [`LabelEntry`]s with a single offset array, frozen
//! from a `Labels` in one pass. Per vertex, the in-list and out-list are
//! adjacent in the arena, and couples (`v_i = 2v`, `v_o = 2v + 1` under the
//! bipartite id scheme) are adjacent to each other — so the two slices a
//! `SCCnt(v)` query intersects usually share cache lines. Once frozen, an
//! arena can also be *patched* instead of rebuilt:
//! [`refreeze_spans`](FrozenLabels::refreeze_spans) folds the lists a
//! batch of updates dirtied into a copy of the existing arena, which is
//! what keeps snapshot republication cost proportional to the update, not
//! the index.
//!
//! Both layouts answer queries through the [`LabelStore`] trait, whose
//! default `dist_count` uses [`intersect_adaptive`]. The kernel picks a
//! strategy by list shape:
//!
//! * **galloping** (exponential probe + binary search) when one list is at
//!   least [`GALLOP_SKEW`] times longer than the other — `O(short · log
//!   long)` instead of `O(short + long)`;
//! * **dual-chain branchless merge** when both lists are long: the lists
//!   are split at a pivot rank and the two independent sub-merges run
//!   interleaved in one loop. A single merge is bound by its loop-carried
//!   dependency (load → compare → conditional advance feeds the next
//!   load), so two independent chains nearly double instruction-level
//!   parallelism; measured ~17% faster than the single chain on ~750-entry
//!   lists;
//! * **single branchless merge** for short lists, where the dual split's
//!   fixed costs (pivot search, drain loops) don't pay.
//!
//! All paths are proven equivalent to the reference kernel
//! ([`crate::labels::intersect`]) by the property tests in
//! `tests/frozen_equivalence.rs`.

use crate::entry::LabelEntry;
use crate::labels::{DistCount, LabelSide, Labels};
use csc_graph::budget::{BudgetExceeded, OpBudget};
use csc_graph::VertexId;

/// Length ratio at which [`intersect_adaptive`] switches from the merge to
/// the galloping strategy.
pub const GALLOP_SKEW: usize = 8;

/// Minimum length of the *shorter* list before the dual-chain merge is
/// worth its fixed costs; below this the single-chain merge runs.
pub const DUAL_CHAIN_MIN: usize = 32;

/// Common read interface over label storage layouts.
///
/// [`Labels`] (mutable, nested) and [`FrozenLabels`] (immutable, flat)
/// implement this identically; anything that only reads labels — query
/// evaluation, snapshots, analytics sweeps — should take a `LabelStore`
/// instead of a concrete layout.
pub trait LabelStore {
    /// Number of vertices covered.
    fn vertex_count(&self) -> usize;

    /// The in-label list of `v`, sorted by hub rank.
    fn in_of(&self, v: VertexId) -> &[LabelEntry];

    /// The out-label list of `v`, sorted by hub rank.
    fn out_of(&self, v: VertexId) -> &[LabelEntry];

    /// The label list of `v` on `side`.
    fn side_of(&self, v: VertexId, side: LabelSide) -> &[LabelEntry] {
        match side {
            LabelSide::In => self.in_of(v),
            LabelSide::Out => self.out_of(v),
        }
    }

    /// Total number of stored label entries.
    fn total_entries(&self) -> usize;

    /// `SPCnt(s, t)`: shortest `s ~> t` distance over any common hub and
    /// the number of such shortest paths (Equations (1)–(2)), evaluated
    /// with the adaptive kernel.
    fn dist_count(&self, s: VertexId, t: VertexId) -> Option<DistCount> {
        intersect_adaptive(self.out_of(s), self.in_of(t))
    }

    /// The shortest `s ~> t` distance via the index, if any.
    fn dist(&self, s: VertexId, t: VertexId) -> Option<u32> {
        self.dist_count(s, t).map(|dc| dc.dist)
    }

    /// [`dist_count`](Self::dist_count) behind a cooperative cancellation
    /// checkpoint, for deadline-bounded sweeps (`girth`, `top_k`, batch
    /// queries) that evaluate many intersections in one operation.
    ///
    /// The checkpoint is *cost-weighted* by the two list lengths and sits
    /// between kernel invocations: a single intersection is the atomic
    /// unit (bounded by the longest label list — microseconds), so the
    /// kernel's inner merge/gallop loops stay branch-free while a sweep's
    /// overshoot past its deadline stays bounded by one intersection.
    fn dist_count_budgeted(
        &self,
        s: VertexId,
        t: VertexId,
        budget: &OpBudget,
    ) -> Result<Option<DistCount>, BudgetExceeded> {
        let (out_s, in_t) = (self.out_of(s), self.in_of(t));
        budget.consume(out_s.len() + in_t.len() + 1)?;
        Ok(intersect_adaptive(out_s, in_t))
    }
}

impl LabelStore for Labels {
    #[inline]
    fn vertex_count(&self) -> usize {
        Labels::vertex_count(self)
    }

    #[inline]
    fn in_of(&self, v: VertexId) -> &[LabelEntry] {
        Labels::in_of(self, v)
    }

    #[inline]
    fn out_of(&self, v: VertexId) -> &[LabelEntry] {
        Labels::out_of(self, v)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        Labels::total_entries(self)
    }
}

/// An immutable, contiguous (CSR-style) label arena frozen from a
/// [`Labels`].
///
/// One `Vec<LabelEntry>` holds every list; per slot (vertex × side) a
/// `(start, end)` span addresses its slice. The default [`freeze`]
/// interleaves each vertex's in- and out-list; [`freeze_ordered`] lets the
/// caller place the lists its queries co-access back to back (the cycle
/// query engine in `csc-core` pairs `Lout(v_o)` with `Lin(v_i)`, turning
/// every `SCCnt` evaluation into one forward streaming read). Freezing is
/// `O(total entries)`; queries allocate nothing and touch exactly one
/// slab.
///
/// [`freeze`]: FrozenLabels::freeze
/// [`freeze_ordered`]: FrozenLabels::freeze_ordered
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrozenLabels {
    entries: Vec<LabelEntry>,
    /// Indexed by slot `2v` (in-list of `v`) / `2v + 1` (out-list of `v`)
    /// — the same encoding as [`crate::labels::label_slot`].
    spans: Vec<(u32, u32)>,
    /// Arena entries no span points at anymore. [`refreeze_spans`] strands
    /// the old copy of every list it relocates; the count drives the
    /// caller's compaction policy ([`Self::dead_fraction`]).
    ///
    /// [`refreeze_spans`]: Self::refreeze_spans
    dead: u32,
}

impl FrozenLabels {
    /// Freezes a snapshot of `labels` in natural order (per vertex:
    /// in-list, then out-list).
    pub fn freeze(labels: &Labels) -> Self {
        let n = Labels::vertex_count(labels);
        Self::freeze_ordered(
            labels,
            (0..n as u32)
                .flat_map(|v| [(VertexId(v), LabelSide::In), (VertexId(v), LabelSide::Out)]),
        )
    }

    /// Freezes a snapshot with the `hot` lists laid out first, in the
    /// given order; lists not mentioned follow in natural order. Lists a
    /// query intersects together should be adjacent here — the arena then
    /// serves that query as a single forward stream.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range vertex, on a list mentioned twice, or if
    /// the store holds `>= 2^32` entries (beyond the `u32` span encoding —
    /// at 8 bytes per entry that is a 32 GiB index).
    pub fn freeze_ordered(
        labels: &Labels,
        hot: impl IntoIterator<Item = (VertexId, LabelSide)>,
    ) -> Self {
        let n = Labels::vertex_count(labels);
        let total = Labels::total_entries(labels);
        assert!(
            u32::try_from(total).is_ok(),
            "label arena of {total} entries exceeds u32 spans"
        );
        let mut entries = Vec::with_capacity(total);
        let mut spans = vec![(u32::MAX, u32::MAX); 2 * n];
        let mut place = |spans: &mut Vec<(u32, u32)>, v: VertexId, side: LabelSide| {
            let slot = 2 * v.index() + usize::from(side == LabelSide::Out);
            assert!(
                spans[slot].0 == u32::MAX,
                "freeze order mentions {v:?}/{side:?} twice"
            );
            let lo = entries.len() as u32;
            entries.extend_from_slice(labels.side_of(v, side));
            spans[slot] = (lo, entries.len() as u32);
        };
        for (v, side) in hot {
            assert!(v.index() < n, "freeze order names out-of-range {v:?}");
            place(&mut spans, v, side);
        }
        for v in 0..n as u32 {
            for side in [LabelSide::In, LabelSide::Out] {
                let slot = 2 * v as usize + usize::from(side == LabelSide::Out);
                if spans[slot].0 == u32::MAX {
                    place(&mut spans, VertexId(v), side);
                }
            }
        }
        FrozenLabels {
            entries,
            spans,
            dead: 0,
        }
    }

    /// Produces a new arena equal to re-freezing `labels`, by patching only
    /// the listed dirty slots (see
    /// [`Labels::take_dirty`](crate::Labels::take_dirty)) into a copy of
    /// `self` — `O(arena copy + changed entries)` instead of a full
    /// per-list re-gather.
    ///
    /// A dirty list whose length is unchanged is overwritten in place; a
    /// grown or shrunk list is appended at the arena tail and its old span
    /// becomes dead space. Dead space accumulates across generations —
    /// callers should fall back to a full [`freeze`](Self::freeze) /
    /// [`freeze_ordered`](Self::freeze_ordered) once
    /// [`dead_fraction`](Self::dead_fraction) crosses their threshold,
    /// which also restores the intended hot-list layout.
    ///
    /// # Panics
    ///
    /// Panics if a slot is out of range for `labels`, if the same slot is
    /// listed twice, or if the patched arena would exceed `u32` spans.
    pub fn refreeze_spans(&self, labels: &Labels, dirty_slots: &[u32]) -> Self {
        let mut fresh = self.clone();
        let n = Labels::vertex_count(labels);
        assert!(
            fresh.spans.len() <= 2 * n,
            "labels cover fewer vertices than the frozen arena"
        );
        // Vertices added since the freeze: empty placeholder spans (their
        // slots are dirty, so real content lands below).
        fresh.spans.resize(2 * n, (0, 0));
        let mut seen = vec![false; 2 * n];
        for &slot in dirty_slots {
            let (v, side) = crate::labels::slot_list(slot);
            assert!(v.index() < n, "dirty slot {slot} out of range");
            assert!(!seen[slot as usize], "dirty slot {slot} listed twice");
            seen[slot as usize] = true;
            let list = labels.side_of(v, side);
            let (lo, hi) = fresh.spans[slot as usize];
            if (hi - lo) as usize == list.len() {
                fresh.entries[lo as usize..hi as usize].copy_from_slice(list);
            } else {
                fresh.dead += hi - lo;
                let lo2 = fresh.entries.len();
                fresh.entries.extend_from_slice(list);
                let hi2 = u32::try_from(fresh.entries.len())
                    .expect("patched label arena exceeds u32 spans");
                fresh.spans[slot as usize] = (lo2 as u32, hi2);
            }
        }
        fresh
    }

    /// The `(dead, total)` arena entry counts [`refreeze_spans`]
    /// would produce for this dirty set, computed in `O(dirty)` without
    /// touching the arena — callers can decide to compact (full freeze)
    /// *instead of* paying for a patched copy they would throw away.
    ///
    /// [`refreeze_spans`]: Self::refreeze_spans
    pub fn projected_refreeze(&self, labels: &Labels, dirty_slots: &[u32]) -> (usize, usize) {
        let mut dead = self.dead as usize;
        let mut total = self.entries.len();
        for &slot in dirty_slots {
            let (v, side) = crate::labels::slot_list(slot);
            let new_len = labels.side_of(v, side).len();
            let old_len = self
                .spans
                .get(slot as usize)
                .map_or(0, |&(lo, hi)| (hi - lo) as usize);
            if new_len != old_len {
                dead += old_len;
                total += new_len;
            }
        }
        (dead, total)
    }

    /// Number of live entries on `side` across all vertices, recomputed
    /// from the spans in O(n). Feeds the per-side drift statistics of
    /// `IndexHealth`; dead (relocated) entries are not counted.
    pub fn side_entries(&self, side: LabelSide) -> usize {
        let parity = usize::from(side == LabelSide::Out);
        self.spans
            .iter()
            .enumerate()
            .filter(|(slot, _)| slot % 2 == parity)
            .map(|(_, &(lo, hi))| (hi - lo) as usize)
            .sum()
    }

    /// Arena entries stranded by [`refreeze_spans`](Self::refreeze_spans)
    /// relocations (no span addresses them).
    pub fn dead_entries(&self) -> usize {
        self.dead as usize
    }

    /// Fraction of the arena that is dead space, in `0.0..=1.0`.
    pub fn dead_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            0.0
        } else {
            self.dead as f64 / self.entries.len() as f64
        }
    }

    /// Index size in bytes of the frozen arena (entries + spans),
    /// including dead space awaiting compaction.
    pub fn arena_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<LabelEntry>()
            + self.spans.len() * std::mem::size_of::<(u32, u32)>()
    }

    #[inline]
    fn slice(&self, slot: usize) -> &[LabelEntry] {
        let (lo, hi) = self.spans[slot];
        &self.entries[lo as usize..hi as usize]
    }
}

impl LabelStore for FrozenLabels {
    #[inline]
    fn vertex_count(&self) -> usize {
        self.spans.len() / 2
    }

    #[inline]
    fn in_of(&self, v: VertexId) -> &[LabelEntry] {
        self.slice(2 * v.index())
    }

    #[inline]
    fn out_of(&self, v: VertexId) -> &[LabelEntry] {
        self.slice(2 * v.index() + 1)
    }

    #[inline]
    fn total_entries(&self) -> usize {
        self.entries.len() - self.dead as usize
    }
}

/// Running minimum-distance / count-sum accumulator for Equations (1)–(2).
#[derive(Clone, Copy)]
struct MinDistAcc {
    dist: u32,
    count: u64,
}

impl MinDistAcc {
    #[inline]
    fn new() -> Self {
        MinDistAcc {
            dist: u32::MAX,
            count: 0,
        }
    }

    #[inline]
    fn meet(&mut self, a: LabelEntry, b: LabelEntry) {
        let d = a.dist() + b.dist();
        if d < self.dist {
            self.dist = d;
            self.count = a.count().saturating_mul(b.count());
        } else if d == self.dist {
            self.count = self
                .count
                .saturating_add(a.count().saturating_mul(b.count()));
        }
    }

    /// Combines two partial results over disjoint hub ranges.
    #[inline]
    fn combine(mut self, other: MinDistAcc) -> MinDistAcc {
        if other.dist < self.dist {
            self = other;
        } else if other.dist == self.dist && self.dist != u32::MAX {
            self.count = self.count.saturating_add(other.count);
        }
        self
    }

    #[inline]
    fn finish(self) -> Option<DistCount> {
        (self.dist != u32::MAX).then_some(DistCount {
            dist: self.dist,
            count: self.count,
        })
    }
}

/// Adaptive sorted-list intersection: galloping when one side is ≥
/// [`GALLOP_SKEW`]× longer, a dual-chain branchless merge when both lists
/// are ≥ [`DUAL_CHAIN_MIN`] long, and a single branchless merge otherwise.
/// Exactly equivalent to [`crate::labels::intersect`].
pub fn intersect_adaptive(out_s: &[LabelEntry], in_t: &[LabelEntry]) -> Option<DistCount> {
    if out_s.is_empty() || in_t.is_empty() {
        return None;
    }
    // The sum and product in `meet` are symmetric, so the two sides are
    // interchangeable; gallop over the longer with keys from the shorter.
    if out_s.len() >= GALLOP_SKEW * in_t.len() {
        intersect_gallop(in_t, out_s)
    } else if in_t.len() >= GALLOP_SKEW * out_s.len() {
        intersect_gallop(out_s, in_t)
    } else if out_s.len().min(in_t.len()) >= DUAL_CHAIN_MIN {
        intersect_merge_dual(out_s, in_t)
    } else {
        intersect_merge(out_s, in_t)
    }
}

/// One branchless merge step over `a[*i..]` × `b[*j..]`: meets on a hub
/// match, then advances the lagging side(s) with branch-free conditional
/// increments. The only data-dependent branch is the (rare,
/// well-predicted) hub match.
#[inline(always)]
fn merge_step(
    a: &[LabelEntry],
    b: &[LabelEntry],
    i: &mut usize,
    j: &mut usize,
    acc: &mut MinDistAcc,
) {
    let (ea, eb) = (a[*i], b[*j]);
    let (ka, kb) = (ea.hub_rank(), eb.hub_rank());
    if ka == kb {
        acc.meet(ea, eb);
    }
    *i += (ka <= kb) as usize;
    *j += (kb <= ka) as usize;
}

/// Single-chain branchless two-pointer merge.
fn intersect_merge(a: &[LabelEntry], b: &[LabelEntry]) -> Option<DistCount> {
    let mut acc = MinDistAcc::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        merge_step(a, b, &mut i, &mut j, &mut acc);
    }
    acc.finish()
}

/// Dual-chain merge: splits both lists at a pivot rank (no hub pair can
/// straddle the split, since both lists are sorted by rank) and advances
/// the two independent sub-merges in lockstep within one loop, so the CPU
/// overlaps their loop-carried dependency chains.
fn intersect_merge_dual(a: &[LabelEntry], b: &[LabelEntry]) -> Option<DistCount> {
    let sa = a.len() / 2;
    let pivot = a[sa].hub_rank();
    let sb = gallop_lower_bound(b, 0, pivot);

    let mut low = MinDistAcc::new();
    let mut high = MinDistAcc::new();
    let (mut i1, mut j1) = (0usize, 0usize);
    let (mut i2, mut j2) = (sa, sb);
    // Interleaved phase: one step of each chain per iteration.
    while i1 < sa && j1 < sb && i2 < a.len() && j2 < b.len() {
        merge_step(a, b, &mut i1, &mut j1, &mut low);
        merge_step(a, b, &mut i2, &mut j2, &mut high);
    }
    // Drain whichever chain still has work.
    while i1 < sa && j1 < sb {
        merge_step(a, b, &mut i1, &mut j1, &mut low);
    }
    while i2 < a.len() && j2 < b.len() {
        merge_step(a, b, &mut i2, &mut j2, &mut high);
    }
    low.combine(high).finish()
}

/// For each entry of `short`, gallops forward in `long` — exponential probe
/// doubling from the last match position, then binary search inside the
/// overshot window. `O(|short| * log |long|)` worst case, and `O(|short| +
/// log |long|)`-ish when matches cluster, versus `O(|short| + |long|)` for
/// the merge.
fn intersect_gallop(short: &[LabelEntry], long: &[LabelEntry]) -> Option<DistCount> {
    let mut acc = MinDistAcc::new();
    let mut pos = 0usize;
    for &es in short {
        let key = es.hub_rank();
        pos = gallop_lower_bound(long, pos, key);
        if pos == long.len() {
            break;
        }
        let el = long[pos];
        if el.hub_rank() == key {
            acc.meet(es, el);
            pos += 1;
        }
    }
    acc.finish()
}

/// First index `>= start` whose hub rank is `>= key` (or `long.len()`).
fn gallop_lower_bound(long: &[LabelEntry], start: usize, key: u32) -> usize {
    // Exponential phase: every index below `lo` holds a rank `< key`.
    let mut lo = start;
    let mut step = 1usize;
    while lo + step <= long.len() && long[lo + step - 1].hub_rank() < key {
        lo += step;
        step <<= 1;
    }
    // Binary phase inside the overshot window.
    let mut hi = (lo + step - 1).min(long.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if long[mid].hub_rank() < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::labels::intersect;

    fn e(h: u32, d: u32, c: u64) -> LabelEntry {
        LabelEntry::new(h, d, c).unwrap()
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    fn sample_labels() -> Labels {
        let mut l = Labels::new(4);
        l.append(v(0), LabelSide::In, e(0, 0, 1));
        l.append(v(0), LabelSide::Out, e(0, 1, 2));
        l.append(v(0), LabelSide::Out, e(2, 3, 1));
        l.append(v(1), LabelSide::In, e(0, 2, 1));
        l.append(v(1), LabelSide::In, e(2, 1, 4));
        l.append(v(3), LabelSide::Out, e(1, 5, 1));
        l
    }

    #[test]
    fn side_entries_match_store_and_skip_dead_space() {
        let mut labels = sample_labels();
        let frozen = FrozenLabels::freeze(&labels);
        for side in [LabelSide::In, LabelSide::Out] {
            assert_eq!(frozen.side_entries(side), labels.side_entries(side));
        }
        // Grow one list so a refreeze relocates it: the stranded copy must
        // not count toward either side.
        labels.take_dirty();
        labels.append(v(3), LabelSide::Out, e(2, 2, 1));
        let dirty = labels.take_dirty();
        let patched = frozen.refreeze_spans(&labels, &dirty);
        assert!(patched.dead_entries() > 0);
        for side in [LabelSide::In, LabelSide::Out] {
            assert_eq!(patched.side_entries(side), labels.side_entries(side));
        }
    }

    #[test]
    fn freeze_preserves_every_slice() {
        let labels = sample_labels();
        let frozen = FrozenLabels::freeze(&labels);
        assert_eq!(LabelStore::vertex_count(&frozen), 4);
        assert_eq!(LabelStore::total_entries(&frozen), 6);
        for i in 0..4 {
            assert_eq!(LabelStore::in_of(&frozen, v(i)), labels.in_of(v(i)));
            assert_eq!(LabelStore::out_of(&frozen, v(i)), labels.out_of(v(i)));
            for side in [LabelSide::In, LabelSide::Out] {
                assert_eq!(
                    LabelStore::side_of(&frozen, v(i), side),
                    labels.side_of(v(i), side)
                );
            }
        }
        assert_eq!(frozen.arena_bytes(), 6 * 8 + 8 * 8);
    }

    #[test]
    fn freeze_ordered_places_hot_lists_first_and_answers_identically() {
        let labels = sample_labels();
        // Cycle-style pairing: out-list of 2v+1 next to in-list of 2v.
        let frozen = FrozenLabels::freeze_ordered(
            &labels,
            (0..2u32).flat_map(|v| {
                [
                    (VertexId(2 * v + 1), LabelSide::Out),
                    (VertexId(2 * v), LabelSide::In),
                ]
            }),
        );
        for i in 0..4 {
            assert_eq!(LabelStore::in_of(&frozen, v(i)), labels.in_of(v(i)));
            assert_eq!(LabelStore::out_of(&frozen, v(i)), labels.out_of(v(i)));
        }
        for s in 0..4 {
            for t in 0..4 {
                let (s, t) = (v(s), v(t));
                assert_eq!(
                    LabelStore::dist_count(&frozen, s, t),
                    labels.dist_count(s, t)
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn freeze_ordered_rejects_duplicates() {
        let labels = sample_labels();
        let _ =
            FrozenLabels::freeze_ordered(&labels, [(v(0), LabelSide::In), (v(0), LabelSide::In)]);
    }

    #[test]
    fn dual_chain_threshold_lists_agree_with_reference() {
        // Both lists long enough for the dual-chain path, dense overlap.
        let a: Vec<LabelEntry> = (0..80)
            .map(|h| e(3 * h, (h % 11) + 1, (h % 5 + 1) as u64))
            .collect();
        let b: Vec<LabelEntry> = (0..90)
            .map(|h| e(2 * h, (h % 7) + 1, (h % 3 + 1) as u64))
            .collect();
        assert!(a.len().min(b.len()) >= DUAL_CHAIN_MIN);
        assert_eq!(intersect_adaptive(&a, &b), intersect(&a, &b));
        assert_eq!(intersect_adaptive(&b, &a), intersect(&a, &b));
    }

    #[test]
    fn refreeze_spans_tracks_mutations() {
        let mut labels = sample_labels();
        labels.take_dirty();
        let frozen = FrozenLabels::freeze(&labels);

        // Same-length change: in-place overwrite, no dead space.
        labels.upsert(v(1), LabelSide::In, e(2, 9, 9));
        // Growth: list relocates to the tail, old span goes dead.
        labels.upsert(v(0), LabelSide::Out, e(1, 2, 2));
        // Shrink to empty.
        labels.remove(v(3), LabelSide::Out, 1);
        // Brand-new vertex.
        labels.push_vertex();
        labels.append(v(4), LabelSide::In, e(5, 1, 1));

        let dirty = labels.take_dirty();
        let patched = frozen.refreeze_spans(&labels, &dirty);
        let full = FrozenLabels::freeze(&labels);
        assert_eq!(LabelStore::vertex_count(&patched), 5);
        for i in 0..5 {
            assert_eq!(
                LabelStore::in_of(&patched, v(i)),
                LabelStore::in_of(&full, v(i)),
                "in-list of {i}"
            );
            assert_eq!(
                LabelStore::out_of(&patched, v(i)),
                LabelStore::out_of(&full, v(i)),
                "out-list of {i}"
            );
        }
        // Logical size matches; dead space counts the two relocations
        // (Lout(0) had 2 entries, Lout(3) had 1).
        assert_eq!(
            LabelStore::total_entries(&patched),
            LabelStore::total_entries(&full)
        );
        assert_eq!(patched.dead_entries(), 3);
        assert!(patched.dead_fraction() > 0.0 && patched.dead_fraction() < 1.0);
        assert_eq!(frozen.dead_entries(), 0, "source arena untouched");

        // A second generation keeps patching the patched arena.
        labels.upsert(v(2), LabelSide::In, e(0, 1, 1));
        let dirty2 = labels.take_dirty();
        let patched2 = patched.refreeze_spans(&labels, &dirty2);
        assert_eq!(
            LabelStore::in_of(&patched2, v(2)),
            labels.in_of(v(2)),
            "second-generation patch"
        );
    }

    #[test]
    fn refreeze_with_no_dirt_is_identical() {
        let labels = sample_labels();
        let frozen = FrozenLabels::freeze(&labels);
        assert_eq!(frozen.refreeze_spans(&labels, &[]), frozen);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn refreeze_rejects_duplicate_slots() {
        let labels = sample_labels();
        let frozen = FrozenLabels::freeze(&labels);
        let _ = frozen.refreeze_spans(&labels, &[0, 0]);
    }

    #[test]
    fn trait_query_agrees_between_layouts() {
        let labels = sample_labels();
        let frozen = FrozenLabels::freeze(&labels);
        for s in 0..4 {
            for t in 0..4 {
                let (s, t) = (v(s), v(t));
                assert_eq!(
                    LabelStore::dist_count(&frozen, s, t),
                    labels.dist_count(s, t),
                    "({s}, {t})"
                );
                assert_eq!(LabelStore::dist(&frozen, s, t), labels.dist(s, t));
            }
        }
    }

    #[test]
    fn budgeted_dist_count_matches_and_aborts() {
        use csc_graph::budget::{BudgetExceeded, OpBudget};
        use std::time::Duration;

        let labels = sample_labels();
        let frozen = FrozenLabels::freeze(&labels);
        let roomy = OpBudget::within(Duration::from_secs(3600));
        for s in 0..4 {
            for t in 0..4 {
                let (s, t) = (v(s), v(t));
                assert_eq!(
                    frozen.dist_count_budgeted(s, t, &roomy).unwrap(),
                    LabelStore::dist_count(&frozen, s, t)
                );
                // The nested layout honors the same trait checkpoint.
                assert_eq!(
                    labels.dist_count_budgeted(s, t, &roomy).unwrap(),
                    labels.dist_count(s, t)
                );
            }
        }
        let expired = OpBudget::within(Duration::ZERO);
        assert_eq!(
            frozen.dist_count_budgeted(v(0), v(1), &expired),
            Err(BudgetExceeded)
        );
    }

    #[test]
    fn empty_and_disjoint_lists() {
        assert_eq!(intersect_adaptive(&[], &[]), None);
        assert_eq!(intersect_adaptive(&[e(1, 1, 1)], &[]), None);
        assert_eq!(intersect_adaptive(&[], &[e(1, 1, 1)]), None);
        let a = [e(0, 1, 1), e(2, 1, 1), e(4, 1, 1)];
        let b = [e(1, 1, 1), e(3, 1, 1), e(5, 1, 1)];
        assert_eq!(intersect_adaptive(&a, &b), None);
    }

    #[test]
    fn merge_and_gallop_agree_with_reference_on_skewed_lists() {
        // `long` is every even hub up to 400; `short` hits a few of them.
        let long: Vec<LabelEntry> = (0..200)
            .map(|h| e(2 * h, (h % 9) + 1, (h % 3 + 1) as u64))
            .collect();
        let short = [e(2, 1, 2), e(97, 1, 1), e(200, 2, 5), e(398, 1, 1)];
        assert!(
            long.len() >= GALLOP_SKEW * short.len(),
            "exercises galloping"
        );
        let want = intersect(&short, &long);
        assert_eq!(intersect_adaptive(&short, &long), want);
        assert_eq!(intersect_adaptive(&long, &short), want);
        assert!(want.is_some());
    }

    #[test]
    fn gallop_lower_bound_boundaries() {
        let list: Vec<LabelEntry> = [1u32, 3, 5, 8, 13].iter().map(|&h| e(h, 1, 1)).collect();
        assert_eq!(gallop_lower_bound(&list, 0, 0), 0);
        assert_eq!(gallop_lower_bound(&list, 0, 1), 0);
        assert_eq!(gallop_lower_bound(&list, 0, 2), 1);
        assert_eq!(gallop_lower_bound(&list, 0, 13), 4);
        assert_eq!(gallop_lower_bound(&list, 0, 14), 5);
        assert_eq!(gallop_lower_bound(&list, 3, 5), 3, "start past the key");
        assert_eq!(gallop_lower_bound(&[], 0, 7), 0);
    }

    #[test]
    fn worked_example_2_matches_nested_kernel() {
        // SPCnt(v10, v8) from the paper's Figure 2 (see labels.rs tests).
        let out_v10 = [e(0, 1, 1), e(1, 3, 1)];
        let in_v8 = [e(0, 3, 2), e(1, 1, 1)];
        assert_eq!(
            intersect_adaptive(&out_v10, &in_v8),
            Some(DistCount { dist: 4, count: 3 })
        );
    }

    #[test]
    fn saturating_count_arithmetic_matches() {
        let big = crate::entry::MAX_COUNT;
        let a = [e(0, 1, big), e(1, 1, big)];
        let b = [e(0, 1, big), e(1, 1, big)];
        assert_eq!(intersect_adaptive(&a, &b), intersect(&a, &b));
    }
}
