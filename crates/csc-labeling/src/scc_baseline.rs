//! Baseline 1 (Section III-A): shortest-cycle counting through HP-SPC plus
//! neighborhood enumeration.
//!
//! `SPCnt(v, v)` over a 2-hop index degenerates to the empty path, so the
//! cycle query is rewritten through `v`'s neighbors. Every cycle through
//! `v` decomposes uniquely at its first edge `v -> w` (equivalently its
//! last edge `u -> v`), giving Equations (3)–(4):
//!
//! ```text
//! W       = argmin_{w in nbr_out(v)} sd(w, v)
//! SCCnt(v) = sum_{w in W} SPCnt(w, v)        (cycle length = min + 1)
//! ```
//!
//! The side with fewer neighbors is queried (`|nbr_out|` vs `|nbr_in|`),
//! which is exactly why the paper's Figure 10 shows this baseline degrading
//! on high-degree query vertices — the cost is `min_degree` label
//! intersections per query, versus one for CSC.

use crate::cycle::CycleCount;
use crate::hpspc::HpSpcIndex;
use csc_graph::{DiGraph, VertexId};

/// Evaluates `SCCnt(v)` with the HP-SPC baseline: one `SPCnt` probe per
/// neighbor on the cheaper side. Returns `None` when no cycle passes
/// through `v`.
pub fn scc_count(index: &HpSpcIndex, g: &DiGraph, v: VertexId) -> Option<CycleCount> {
    let use_out = g.out_degree(v) <= g.in_degree(v);
    let nbrs = if use_out { g.nbr_out(v) } else { g.nbr_in(v) };
    let mut best_dist = u32::MAX;
    let mut total: u64 = 0;
    for &w in nbrs {
        let w = VertexId(w);
        let dc = if use_out {
            index.sp_count(w, v)
        } else {
            index.sp_count(v, w)
        };
        if let Some(dc) = dc {
            if dc.dist < best_dist {
                best_dist = dc.dist;
                total = dc.count;
            } else if dc.dist == best_dist {
                total = total.saturating_add(dc.count);
            }
        }
    }
    (best_dist != u32::MAX).then(|| CycleCount::new(best_dist + 1, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::fixtures::{figure2, figure2_order, pv};
    use csc_graph::generators::{directed_cycle, gnm, preferential_attachment};
    use csc_graph::traversal::shortest_cycle_oracle;
    use csc_graph::{OrderingStrategy, RankTable};

    #[test]
    fn example_3_from_the_paper() {
        let g = figure2();
        let idx =
            HpSpcIndex::build_with_ranks(&g, RankTable::from_order(&figure2_order())).unwrap();
        // SCCnt(v7) = 3 with cycle length 6.
        assert_eq!(scc_count(&idx, &g, pv(7)), Some(CycleCount::new(6, 3)));
    }

    #[test]
    fn all_vertices_match_oracle_on_figure2() {
        let g = figure2();
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        for v in g.vertices() {
            assert_eq!(
                scc_count(&idx, &g, v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "SCCnt({v})"
            );
        }
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm(30, 90, seed);
            let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
            for v in g.vertices() {
                assert_eq!(
                    scc_count(&idx, &g, v).map(|c| (c.length, c.count)),
                    shortest_cycle_oracle(&g, v),
                    "seed {seed} SCCnt({v})"
                );
            }
        }
    }

    #[test]
    fn counts_two_cycles() {
        let g = preferential_attachment(60, 2, 0.8, 3);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        for v in g.vertices() {
            assert_eq!(
                scc_count(&idx, &g, v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "SCCnt({v})"
            );
        }
    }

    #[test]
    fn acyclic_vertex_returns_none() {
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 2)]);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        for v in g.vertices() {
            assert_eq!(scc_count(&idx, &g, v), None);
        }
    }

    #[test]
    fn isolated_vertex_returns_none() {
        let mut g = directed_cycle(3);
        let iso = g.add_vertex();
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        assert_eq!(scc_count(&idx, &g, iso), None);
        assert_eq!(
            scc_count(&idx, &g, VertexId(0)),
            Some(CycleCount::new(3, 1))
        );
    }
}
