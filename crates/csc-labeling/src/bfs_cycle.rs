//! Baseline 2 (Section III-B, Algorithm 1): index-free BFS shortest-cycle
//! counting in `O(n + m)` per query.
//!
//! The BFS starts from the out-neighbors of the query vertex at distance 1
//! and propagates distance/count pairs; the moment `v_q` itself is dequeued,
//! `(D[v_q], C[v_q])` is the answer (all predecessors at distance
//! `D[v_q] - 1` have already contributed their counts by then). If the queue
//! drains without reaching `v_q`, no cycle passes through it.

use crate::cycle::CycleCount;
use crate::state::SearchState;
use csc_graph::{DiGraph, VertexId};

/// A reusable BFS-CYCLE query engine (Algorithm 1).
///
/// Holds the distance/count scratch arrays so repeated queries do not
/// reallocate; one engine serves any number of sequential queries.
#[derive(Clone, Debug)]
pub struct BfsCycleEngine {
    state: SearchState,
}

impl BfsCycleEngine {
    /// Creates an engine for graphs of up to `n` vertices (grows on demand).
    pub fn new(n: usize) -> Self {
        BfsCycleEngine {
            state: SearchState::new(n),
        }
    }

    /// Evaluates `SCCnt(vq)` by BFS. `None` when no cycle passes through.
    pub fn query(&mut self, g: &DiGraph, vq: VertexId) -> Option<CycleCount> {
        let state = &mut self.state;
        state.ensure(g.vertex_count());
        state.reset();

        for &u in g.nbr_out(vq) {
            let u = VertexId(u);
            // Multi-source start: every first hop has one path of length 1.
            state.visit(u, 1, 1);
            state.queue.push_back(u.0);
        }

        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w);
            if w == vq {
                return Some(CycleCount::new(
                    state.dist[w.index()],
                    state.count[w.index()],
                ));
            }
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            for &u in g.nbr_out(w) {
                let u = VertexId(u);
                if !state.visited(u) {
                    state.visit(u, dw + 1, cw);
                    state.queue.push_back(u.0);
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                }
            }
        }
        None
    }
}

/// One-shot convenience wrapper around [`BfsCycleEngine`].
pub fn scc_count_bfs(g: &DiGraph, vq: VertexId) -> Option<CycleCount> {
    BfsCycleEngine::new(g.vertex_count()).query(g, vq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::fixtures::{figure2, pv};
    use csc_graph::generators::{directed_cycle, gnm, layered_cycle, small_world};
    use csc_graph::traversal::shortest_cycle_oracle;

    #[test]
    fn example_1_from_the_paper() {
        let g = figure2();
        assert_eq!(scc_count_bfs(&g, pv(7)), Some(CycleCount::new(6, 3)));
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let mut engine = BfsCycleEngine::new(0);
        for seed in 0..10 {
            let g = gnm(40, 140, seed);
            for v in g.vertices() {
                assert_eq!(
                    engine.query(&g, v).map(|c| (c.length, c.count)),
                    shortest_cycle_oracle(&g, v),
                    "seed {seed}, SCCnt({v})"
                );
            }
        }
    }

    #[test]
    fn engine_reuse_is_clean_across_graphs() {
        let mut engine = BfsCycleEngine::new(4);
        let small = directed_cycle(4);
        assert_eq!(
            engine.query(&small, VertexId(0)),
            Some(CycleCount::new(4, 1))
        );
        // Larger graph afterwards: state must grow and stay correct.
        let big = small_world(100, 2, 0.2, 9);
        for v in big.vertices() {
            assert_eq!(
                engine.query(&big, v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&big, v),
                "SCCnt({v})"
            );
        }
        // And the small graph again.
        assert_eq!(
            engine.query(&small, VertexId(2)),
            Some(CycleCount::new(4, 1))
        );
    }

    #[test]
    fn two_cycle_is_length_two() {
        let g = DiGraph::from_edges(2, vec![(0, 1), (1, 0)]);
        assert_eq!(scc_count_bfs(&g, VertexId(0)), Some(CycleCount::new(2, 1)));
    }

    #[test]
    fn dag_returns_none() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (0, 3)]);
        for v in g.vertices() {
            assert_eq!(scc_count_bfs(&g, v), None);
        }
    }

    #[test]
    fn multiplicity_through_layers() {
        let g = layered_cycle(&[1, 4, 3]);
        // Cycles through the singleton layer vertex: 4 * 3 of length 3.
        assert_eq!(scc_count_bfs(&g, VertexId(0)), Some(CycleCount::new(3, 12)));
    }

    #[test]
    fn vertex_not_on_its_shortest_cycle_side() {
        // 0 -> 1 -> 0 two-cycle; 2 feeds into it but is on no cycle.
        let g = DiGraph::from_edges(3, vec![(0, 1), (1, 0), (2, 0)]);
        assert_eq!(scc_count_bfs(&g, VertexId(2)), None);
        assert_eq!(scc_count_bfs(&g, VertexId(0)), Some(CycleCount::new(2, 1)));
    }
}
