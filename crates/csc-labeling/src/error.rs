//! Errors for index construction.

use crate::entry::EntryOverflow;
use csc_graph::VertexId;
use std::fmt;

/// Why an index could not be built or updated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LabelingError {
    /// The graph has more vertices than the 23-bit hub field can address.
    TooManyVertices {
        /// Number of vertices in the (possibly bipartite) labeled graph.
        got: usize,
        /// Maximum addressable.
        max: usize,
    },
    /// A label entry overflowed while labeling `vertex` from `hub`.
    Entry {
        /// The hub whose traversal produced the entry.
        hub: VertexId,
        /// The vertex being labeled.
        vertex: VertexId,
        /// The underlying field overflow.
        source: EntryOverflow,
    },
}

impl fmt::Display for LabelingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LabelingError::TooManyVertices { got, max } => {
                write!(
                    f,
                    "graph has {got} vertices; labeling supports at most {max}"
                )
            }
            LabelingError::Entry {
                hub,
                vertex,
                source,
            } => {
                write!(
                    f,
                    "label entry overflow at hub {hub}, vertex {vertex}: {source}"
                )
            }
        }
    }
}

impl std::error::Error for LabelingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LabelingError::Entry { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = LabelingError::TooManyVertices { got: 10, max: 5 };
        assert!(e.to_string().contains("at most 5"));
        let e = LabelingError::Entry {
            hub: VertexId(1),
            vertex: VertexId(2),
            source: EntryOverflow::Distance(999_999),
        };
        assert!(e.to_string().contains("hub 1"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
