//! # csc-labeling
//!
//! 2-hop hub labeling with **exact shortest-path counting**, plus the two
//! baseline algorithms the CSC paper compares against:
//!
//! * [`HpSpcIndex`] — HP-SPC (Zhang & Yu, SIGMOD 2020): pruned landmark
//!   labeling whose entries carry shortest-path counts partitioned by
//!   highest-ranked vertex, making `SPCnt(s, t)` queries exact.
//! * [`scc_baseline::scc_count`] — Baseline 1: `SCCnt` via HP-SPC plus
//!   neighborhood enumeration (Section III-A).
//! * [`BfsCycleEngine`] — Baseline 2: index-free `O(n + m)` BFS counting
//!   (Section III-B, Algorithm 1).
//!
//! The building blocks ([`LabelEntry`], [`Labels`], [`SearchState`],
//! [`HubCache`]) are shared with `csc-core`, which layers the bipartite
//! conversion and couple-vertex skipping on the same machinery.
//!
//! Label storage is two-tier: [`Labels`] (nested per-vertex `Vec`s) is the
//! mutable maintenance layout, and [`FrozenLabels`] is the read-optimized
//! contiguous arena frozen from it for serving, with the adaptive
//! intersection kernel ([`intersect_adaptive`]: branchless dual-chain
//! merge + galloping). Both answer identically through the [`LabelStore`]
//! trait — see the [`frozen`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs_cycle;
pub mod cycle;
pub mod entry;
pub mod error;
pub mod frozen;
pub mod hpspc;
pub mod labels;
pub mod scc_baseline;
pub mod state;

pub use bfs_cycle::{scc_count_bfs, BfsCycleEngine};
pub use cycle::CycleCount;
pub use entry::{EntryOverflow, LabelEntry, MAX_COUNT, MAX_DIST, MAX_HUB_RANK};
pub use error::LabelingError;
pub use frozen::{intersect_adaptive, FrozenLabels, LabelStore};
pub use hpspc::{BuildStats, HpSpcIndex};
pub use labels::{label_slot, slot_list, DistCount, LabelSide, Labels};
pub use state::{HubCache, SearchState, INF};
