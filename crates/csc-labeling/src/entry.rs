//! Packed 64-bit label entries.
//!
//! The paper (Section VI-A) encodes each label entry in one 64-bit integer:
//! 23 bits of vertex id, 17 bits of distance, 24 bits of count. We keep the
//! exact layout so index-size comparisons against the paper are apples to
//! apples, with one refinement: the 23-bit field stores the hub's **rank**
//! rather than its raw id. Ranks and ids are bijective (`RankTable`), but
//! rank-keyed entries keep every label list sorted by importance, which is
//! what the two-pointer intersection query and every pruning rule want.
//!
//! Counts saturate at `2^24 - 1` (the paper's encoding has the same ceiling;
//! shortest-path counts can be exponential in pathological graphs). Hub and
//! distance overflows are *errors*, not saturation — a truncated hub or
//! distance would corrupt queries, so construction fails loudly instead.

use std::fmt;

/// Number of bits for the hub rank.
pub const HUB_BITS: u32 = 23;
/// Number of bits for the distance.
pub const DIST_BITS: u32 = 17;
/// Number of bits for the count.
pub const COUNT_BITS: u32 = 24;

/// Largest representable hub rank.
pub const MAX_HUB_RANK: u32 = (1 << HUB_BITS) - 1;
/// Largest representable distance.
pub const MAX_DIST: u32 = (1 << DIST_BITS) - 1;
/// Largest representable count; larger counts saturate here.
pub const MAX_COUNT: u64 = (1 << COUNT_BITS) - 1;

/// Why a label entry could not be encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryOverflow {
    /// The hub rank exceeds [`MAX_HUB_RANK`] (graph too large: `2n >= 2^23`).
    HubRank(u32),
    /// The distance exceeds [`MAX_DIST`] (graph diameter too large).
    Distance(u32),
}

impl fmt::Display for EntryOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryOverflow::HubRank(r) => {
                write!(
                    f,
                    "hub rank {r} exceeds the 23-bit entry limit {MAX_HUB_RANK}"
                )
            }
            EntryOverflow::Distance(d) => {
                write!(f, "distance {d} exceeds the 17-bit entry limit {MAX_DIST}")
            }
        }
    }
}

impl std::error::Error for EntryOverflow {}

/// One hub-label entry `(hub rank, distance, count)` packed into a `u64`.
///
/// Layout (most significant first): `[hub: 23][dist: 17][count: 24]`.
/// Placing the hub rank in the top bits makes the natural integer order of
/// the packed word equal to `(hub_rank, dist, count)` lexicographic order,
/// so label lists can be sorted and searched on the raw `u64`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelEntry(u64);

impl LabelEntry {
    /// Packs an entry, failing on hub/distance overflow and saturating the
    /// count (see the module docs for why these are treated differently).
    #[inline]
    pub fn new(hub_rank: u32, dist: u32, count: u64) -> Result<Self, EntryOverflow> {
        if hub_rank > MAX_HUB_RANK {
            return Err(EntryOverflow::HubRank(hub_rank));
        }
        if dist > MAX_DIST {
            return Err(EntryOverflow::Distance(dist));
        }
        let count = count.min(MAX_COUNT);
        Ok(LabelEntry(
            ((hub_rank as u64) << (DIST_BITS + COUNT_BITS)) | ((dist as u64) << COUNT_BITS) | count,
        ))
    }

    /// Packs an entry, panicking on overflow. For call sites that have
    /// already validated capacity (e.g. replaying entries that were stored
    /// before).
    #[inline]
    pub fn new_unchecked(hub_rank: u32, dist: u32, count: u64) -> Self {
        Self::new(hub_rank, dist, count).expect("label entry overflow")
    }

    /// The hub's rank (smaller = more important).
    #[inline]
    pub fn hub_rank(self) -> u32 {
        (self.0 >> (DIST_BITS + COUNT_BITS)) as u32
    }

    /// The shortest distance between the labeled vertex and the hub.
    #[inline]
    pub fn dist(self) -> u32 {
        ((self.0 >> COUNT_BITS) & (MAX_DIST as u64)) as u32
    }

    /// The (possibly saturated) number of shortest paths this entry covers.
    #[inline]
    pub fn count(self) -> u64 {
        self.0 & MAX_COUNT
    }

    /// `true` if the stored count hit the 24-bit ceiling.
    #[inline]
    pub fn count_saturated(self) -> bool {
        self.count() == MAX_COUNT
    }

    /// The raw packed word (for serialization).
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Reconstructs an entry from a raw packed word (for deserialization).
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        LabelEntry(raw)
    }

    /// Returns a copy with a different distance and count (same hub).
    #[inline]
    pub fn with_dist_count(self, dist: u32, count: u64) -> Result<Self, EntryOverflow> {
        Self::new(self.hub_rank(), dist, count)
    }
}

impl fmt::Debug for LabelEntry {
    /// Shows the decoded triple, e.g. `(r5, d2, c3)`; a trailing `+` marks
    /// a saturated count.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(r{}, d{}, c{}{})",
            self.hub_rank(),
            self.dist(),
            self.count(),
            if self.count_saturated() { "+" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_fields() {
        let e = LabelEntry::new(12345, 678, 999_999).unwrap();
        assert_eq!(e.hub_rank(), 12345);
        assert_eq!(e.dist(), 678);
        assert_eq!(e.count(), 999_999);
        assert!(!e.count_saturated());
    }

    #[test]
    fn boundary_values() {
        let e = LabelEntry::new(MAX_HUB_RANK, MAX_DIST, MAX_COUNT).unwrap();
        assert_eq!(e.hub_rank(), MAX_HUB_RANK);
        assert_eq!(e.dist(), MAX_DIST);
        assert_eq!(e.count(), MAX_COUNT);
        let z = LabelEntry::new(0, 0, 0).unwrap();
        assert_eq!((z.hub_rank(), z.dist(), z.count()), (0, 0, 0));
    }

    #[test]
    fn count_saturates_silently() {
        let e = LabelEntry::new(1, 1, u64::MAX).unwrap();
        assert_eq!(e.count(), MAX_COUNT);
        assert!(e.count_saturated());
    }

    #[test]
    fn hub_and_dist_overflow_fail() {
        assert_eq!(
            LabelEntry::new(MAX_HUB_RANK + 1, 0, 0),
            Err(EntryOverflow::HubRank(MAX_HUB_RANK + 1))
        );
        assert_eq!(
            LabelEntry::new(0, MAX_DIST + 1, 0),
            Err(EntryOverflow::Distance(MAX_DIST + 1))
        );
        assert!(EntryOverflow::Distance(9).to_string().contains("17-bit"));
    }

    #[test]
    fn packed_order_is_hub_then_dist_then_count() {
        let a = LabelEntry::new(1, 100, 50).unwrap();
        let b = LabelEntry::new(2, 0, 0).unwrap();
        let c = LabelEntry::new(2, 1, 0).unwrap();
        let d = LabelEntry::new(2, 1, 7).unwrap();
        assert!(a < b && b < c && c < d);
    }

    #[test]
    fn raw_roundtrip() {
        let e = LabelEntry::new(7, 8, 9).unwrap();
        assert_eq!(LabelEntry::from_raw(e.raw()), e);
    }

    #[test]
    fn with_dist_count_keeps_hub() {
        let e = LabelEntry::new(42, 1, 1).unwrap();
        let f = e.with_dist_count(5, 10).unwrap();
        assert_eq!(f.hub_rank(), 42);
        assert_eq!((f.dist(), f.count()), (5, 10));
    }

    #[test]
    fn entry_is_exactly_8_bytes() {
        assert_eq!(std::mem::size_of::<LabelEntry>(), 8);
    }

    #[test]
    fn debug_format() {
        let e = LabelEntry::new(5, 2, 3).unwrap();
        assert_eq!(format!("{e:?}"), "(r5, d2, c3)");
        let s = LabelEntry::new(5, 2, u64::MAX).unwrap();
        assert!(format!("{s:?}").ends_with("+)"));
    }
}
