//! Label storage and 2-hop query evaluation.
//!
//! [`Labels`] holds, for every vertex, an in-label list (`L_in`: distances
//! *from* hubs) and an out-label list (`L_out`: distances *to* hubs), each
//! sorted by hub rank. The query primitives implement the paper's
//! Equations (1)–(2): a sorted two-pointer intersection that tracks the
//! minimum combined distance and sums count products at that minimum.
//!
//! Every mutation additionally stamps the touched list into a *dirty-slot*
//! set ([`Labels::take_dirty`]), which is what lets snapshot publication
//! re-freeze only the lists an update batch actually changed (see
//! [`FrozenLabels::refreeze_spans`](crate::FrozenLabels::refreeze_spans))
//! instead of re-walking the whole store.

use crate::entry::{EntryOverflow, LabelEntry};
use csc_graph::VertexId;

/// Slot id of the `(vertex, side)` label list: `2v` for the in-list,
/// `2v + 1` for the out-list. The same encoding addresses spans inside
/// [`FrozenLabels`](crate::FrozenLabels).
#[inline]
pub fn label_slot(v: VertexId, side: LabelSide) -> u32 {
    2 * v.0 + u32::from(side == LabelSide::Out)
}

/// Inverse of [`label_slot`].
#[inline]
pub fn slot_list(slot: u32) -> (VertexId, LabelSide) {
    let side = if slot.is_multiple_of(2) {
        LabelSide::In
    } else {
        LabelSide::Out
    };
    (VertexId(slot / 2), side)
}

/// Which side of a vertex's labels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LabelSide {
    /// In-labels: entries `(h, sd(h, v), c)` — paths from the hub to `v`.
    In,
    /// Out-labels: entries `(h, sd(v, h), c)` — paths from `v` to the hub.
    Out,
}

impl LabelSide {
    /// The opposite side.
    #[inline]
    pub fn flip(self) -> LabelSide {
        match self {
            LabelSide::In => LabelSide::Out,
            LabelSide::Out => LabelSide::In,
        }
    }
}

/// A distance/count pair returned by label queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DistCount {
    /// Shortest distance.
    pub dist: u32,
    /// Number of shortest paths (saturating).
    pub count: u64,
}

/// Per-vertex in/out label lists, sorted by hub rank.
#[derive(Clone, Debug, Default)]
pub struct Labels {
    in_labels: Vec<Vec<LabelEntry>>,
    out_labels: Vec<Vec<LabelEntry>>,
    /// Maintained by every mutation (`[0]` = in side, `[1]` = out side) so
    /// [`Labels::total_entries`] and the per-side counts feeding
    /// `IndexHealth` — read on each `UpdateReport` — stay O(1) instead of
    /// re-summing `2n` vectors.
    side_count: [usize; 2],
    dirty: DirtySlots,
}

#[inline]
fn side_ix(side: LabelSide) -> usize {
    usize::from(side == LabelSide::Out)
}

/// The set of label-list slots mutated since the last drain: a stamp
/// bitmap for O(1) dedup plus an insertion-ordered slot list so draining
/// costs O(dirty), not O(n).
#[derive(Clone, Debug, Default)]
struct DirtySlots {
    stamped: Vec<bool>,
    slots: Vec<u32>,
}

impl DirtySlots {
    #[inline]
    fn mark(&mut self, slot: u32) {
        let i = slot as usize;
        if i >= self.stamped.len() {
            self.stamped.resize(i + 1, false);
        }
        if !self.stamped[i] {
            self.stamped[i] = true;
            self.slots.push(slot);
        }
    }

    fn take(&mut self) -> Vec<u32> {
        for &s in &self.slots {
            self.stamped[s as usize] = false;
        }
        std::mem::take(&mut self.slots)
    }
}

/// Equality is over the stored label lists only; the dirty-slot tracking
/// is publication bookkeeping, not index state (two stores that went
/// through different mutation histories but hold the same entries are
/// equal).
impl PartialEq for Labels {
    fn eq(&self, other: &Self) -> bool {
        self.in_labels == other.in_labels && self.out_labels == other.out_labels
    }
}

impl Eq for Labels {}

impl Labels {
    /// Creates empty label lists for `n` vertices.
    pub fn new(n: usize) -> Self {
        Labels {
            in_labels: vec![Vec::new(); n],
            out_labels: vec![Vec::new(); n],
            side_count: [0, 0],
            dirty: DirtySlots::default(),
        }
    }

    /// Number of vertices covered.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.in_labels.len()
    }

    /// Grows the structure to cover one more vertex (dynamic graphs).
    ///
    /// The fresh (empty) lists count as dirty: an incremental re-freeze
    /// must learn about the new slots even if no entry lands in them.
    pub fn push_vertex(&mut self) {
        let v = VertexId(self.in_labels.len() as u32);
        self.in_labels.push(Vec::new());
        self.out_labels.push(Vec::new());
        self.dirty.mark(label_slot(v, LabelSide::In));
        self.dirty.mark(label_slot(v, LabelSide::Out));
    }

    /// Drains the set of label-list slots (see [`label_slot`]) mutated
    /// since the previous drain (or construction), in first-touch order.
    ///
    /// Snapshot publication uses this to re-freeze only the changed spans;
    /// anything else that consumes a full freeze should drain and discard
    /// so the set doesn't carry stale history forward.
    pub fn take_dirty(&mut self) -> Vec<u32> {
        self.dirty.take()
    }

    /// Number of distinct label lists mutated since the last drain.
    pub fn dirty_len(&self) -> usize {
        self.dirty.slots.len()
    }

    /// Marks every label list dirty, as if each had been mutated.
    ///
    /// For wholesale replacements (a from-scratch rebuild swapped into a
    /// live index): the next incremental re-freeze must re-gather every
    /// span, because the previous snapshot's layout describes the retired
    /// store.
    pub fn mark_all_dirty(&mut self) {
        for v in 0..self.in_labels.len() as u32 {
            self.dirty.mark(label_slot(VertexId(v), LabelSide::In));
            self.dirty.mark(label_slot(VertexId(v), LabelSide::Out));
        }
    }

    /// The in-label list of `v`.
    #[inline]
    pub fn in_of(&self, v: VertexId) -> &[LabelEntry] {
        &self.in_labels[v.index()]
    }

    /// The out-label list of `v`.
    #[inline]
    pub fn out_of(&self, v: VertexId) -> &[LabelEntry] {
        &self.out_labels[v.index()]
    }

    /// The label list of `v` on `side`.
    #[inline]
    pub fn side_of(&self, v: VertexId, side: LabelSide) -> &[LabelEntry] {
        match side {
            LabelSide::In => self.in_of(v),
            LabelSide::Out => self.out_of(v),
        }
    }

    fn side_mut(&mut self, v: VertexId, side: LabelSide) -> &mut Vec<LabelEntry> {
        match side {
            LabelSide::In => &mut self.in_labels[v.index()],
            LabelSide::Out => &mut self.out_labels[v.index()],
        }
    }

    /// Appends an entry whose hub rank is strictly greater than every
    /// existing entry's — the hot path during static construction, where
    /// hubs are processed in descending rank order.
    ///
    /// Debug builds assert the ordering invariant.
    #[inline]
    pub fn append(&mut self, v: VertexId, side: LabelSide, entry: LabelEntry) {
        let list = self.side_mut(v, side);
        debug_assert!(
            list.last()
                .is_none_or(|last| last.hub_rank() < entry.hub_rank()),
            "append would break hub-rank order at {v:?}"
        );
        list.push(entry);
        self.side_count[side_ix(side)] += 1;
        self.dirty.mark(label_slot(v, side));
    }

    /// Inserts or replaces the entry for `entry.hub_rank()` at `v`,
    /// keeping the list sorted. Returns the previous entry, if any.
    /// This is the dynamic-maintenance path (`UPDATE_LABEL`).
    pub fn upsert(
        &mut self,
        v: VertexId,
        side: LabelSide,
        entry: LabelEntry,
    ) -> Option<LabelEntry> {
        let list = self.side_mut(v, side);
        let previous = match list.binary_search_by_key(&entry.hub_rank(), |e| e.hub_rank()) {
            Ok(pos) => Some(std::mem::replace(&mut list[pos], entry)),
            Err(pos) => {
                list.insert(pos, entry);
                self.side_count[side_ix(side)] += 1;
                None
            }
        };
        self.dirty.mark(label_slot(v, side));
        previous
    }

    /// Looks up the entry with hub rank `hub_rank` at `v`, if present.
    #[inline]
    pub fn entry_for(&self, v: VertexId, side: LabelSide, hub_rank: u32) -> Option<LabelEntry> {
        let list = self.side_of(v, side);
        list.binary_search_by_key(&hub_rank, |e| e.hub_rank())
            .ok()
            .map(|pos| list[pos])
    }

    /// Removes the entry with hub rank `hub_rank` at `v`. Returns it.
    pub fn remove(&mut self, v: VertexId, side: LabelSide, hub_rank: u32) -> Option<LabelEntry> {
        let list = self.side_mut(v, side);
        match list.binary_search_by_key(&hub_rank, |e| e.hub_rank()) {
            Ok(pos) => {
                let removed = list.remove(pos);
                self.side_count[side_ix(side)] -= 1;
                self.dirty.mark(label_slot(v, side));
                Some(removed)
            }
            Err(_) => None,
        }
    }

    /// Removes entries of `v`'s `side` list for which `pred` returns true,
    /// returning the removed entries.
    pub fn drain_matching(
        &mut self,
        v: VertexId,
        side: LabelSide,
        mut pred: impl FnMut(LabelEntry) -> bool,
    ) -> Vec<LabelEntry> {
        let list = self.side_mut(v, side);
        let mut removed = Vec::new();
        list.retain(|&e| {
            if pred(e) {
                removed.push(e);
                false
            } else {
                true
            }
        });
        self.side_count[side_ix(side)] -= removed.len();
        if !removed.is_empty() {
            self.dirty.mark(label_slot(v, side));
        }
        removed
    }

    /// `SPCnt(s, t)` over the index: the shortest `s ~> t` distance via any
    /// common hub and the total number of such shortest paths
    /// (Equations (1)–(2)). `None` when no common hub connects the pair.
    pub fn dist_count(&self, s: VertexId, t: VertexId) -> Option<DistCount> {
        intersect(self.out_of(s), self.in_of(t))
    }

    /// The shortest `s ~> t` distance via the index, if any.
    pub fn dist(&self, s: VertexId, t: VertexId) -> Option<u32> {
        self.dist_count(s, t).map(|dc| dc.dist)
    }

    /// Total number of stored label entries. O(1): maintained by every
    /// mutation rather than re-summed per call (this runs inside every
    /// `UpdateReport` on the update hot path).
    #[inline]
    pub fn total_entries(&self) -> usize {
        debug_assert_eq!(
            [self.side_count[0], self.side_count[1]],
            self.recount_entries()
        );
        self.side_count[0] + self.side_count[1]
    }

    /// Number of stored entries on `side` across all vertices. O(1):
    /// maintained alongside [`total_entries`](Self::total_entries); feeds
    /// the per-side drift statistics of `IndexHealth`.
    #[inline]
    pub fn side_entries(&self, side: LabelSide) -> usize {
        self.side_count[side_ix(side)]
    }

    /// Recomputes the per-side entry totals from the lists (O(n) ground
    /// truth for the maintained counters; used by `validate_sorted` and
    /// debug assertions).
    fn recount_entries(&self) -> [usize; 2] {
        let ins: usize = self.in_labels.iter().map(Vec::len).sum();
        let outs: usize = self.out_labels.iter().map(Vec::len).sum();
        [ins, outs]
    }

    /// Index size in bytes under the paper's 64-bit-per-entry encoding.
    pub fn entry_bytes(&self) -> usize {
        self.total_entries() * std::mem::size_of::<LabelEntry>()
    }

    /// Heap bytes actually held by the nested store: list *capacities*
    /// plus the per-vertex `Vec` headers. This is the maintenance-layout
    /// footprint an engine-level memory budget has to account for, as
    /// opposed to the logical [`entry_bytes`](Self::entry_bytes).
    pub fn heap_bytes(&self) -> usize {
        fn lists(side: &[Vec<LabelEntry>]) -> usize {
            side.iter()
                .map(|l| l.capacity() * std::mem::size_of::<LabelEntry>())
                .sum::<usize>()
                + std::mem::size_of_val(side)
        }
        lists(&self.in_labels) + lists(&self.out_labels)
    }

    /// Largest label list length (query cost is proportional to this).
    pub fn max_label_len(&self) -> usize {
        self.in_labels
            .iter()
            .chain(self.out_labels.iter())
            .map(Vec::len)
            .max()
            .unwrap_or(0)
    }

    /// Checks the sortedness invariant of every list.
    pub fn validate_sorted(&self) -> Result<(), String> {
        for (v, list) in self.in_labels.iter().enumerate() {
            if !list.windows(2).all(|w| w[0].hub_rank() < w[1].hub_rank()) {
                return Err(format!("in-labels of vertex {v} are not sorted/unique"));
            }
        }
        for (v, list) in self.out_labels.iter().enumerate() {
            if !list.windows(2).all(|w| w[0].hub_rank() < w[1].hub_rank()) {
                return Err(format!("out-labels of vertex {v} are not sorted/unique"));
            }
        }
        if self.side_count != self.recount_entries() {
            return Err(format!(
                "entry counters {:?} diverged from stored entries {:?}",
                self.side_count,
                self.recount_entries()
            ));
        }
        Ok(())
    }
}

/// Two-pointer sorted intersection implementing Equations (1)–(2).
///
/// Stale (dominated) entries may be present under the redundancy update
/// strategy; they are harmless here because an entry with a non-minimal
/// stored distance can never participate in the minimal combined distance
/// (label distances upper-bound true distances, so a stale component would
/// push the sum strictly above the covered minimum).
pub fn intersect(out_s: &[LabelEntry], in_t: &[LabelEntry]) -> Option<DistCount> {
    let mut best_dist = u32::MAX;
    let mut best_count: u64 = 0;
    let (mut i, mut j) = (0, 0);
    while i < out_s.len() && j < in_t.len() {
        let (a, b) = (out_s[i], in_t[j]);
        match a.hub_rank().cmp(&b.hub_rank()) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let d = a.dist() + b.dist();
                if d < best_dist {
                    best_dist = d;
                    best_count = a.count().saturating_mul(b.count());
                } else if d == best_dist {
                    best_count = best_count.saturating_add(a.count().saturating_mul(b.count()));
                }
                i += 1;
                j += 1;
            }
        }
    }
    (best_dist != u32::MAX).then_some(DistCount {
        dist: best_dist,
        count: best_count,
    })
}

/// Convenience constructor for an entry; forwards overflow errors.
#[inline]
pub fn entry(hub_rank: u32, dist: u32, count: u64) -> Result<LabelEntry, EntryOverflow> {
    LabelEntry::new(hub_rank, dist, count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(h: u32, d: u32, c: u64) -> LabelEntry {
        LabelEntry::new(h, d, c).unwrap()
    }

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn append_and_query_roundtrip() {
        let mut l = Labels::new(2);
        l.append(v(0), LabelSide::Out, e(0, 1, 1));
        l.append(v(0), LabelSide::Out, e(3, 2, 2));
        l.append(v(1), LabelSide::In, e(0, 2, 3));
        l.append(v(1), LabelSide::In, e(3, 1, 1));
        l.validate_sorted().unwrap();
        // Via hub 0: 1 + 2 = 3, count 1*3 = 3; via hub 3: 2 + 1 = 3, count 2.
        assert_eq!(
            l.dist_count(v(0), v(1)),
            Some(DistCount { dist: 3, count: 5 })
        );
        assert_eq!(l.dist(v(0), v(1)), Some(3));
    }

    #[test]
    fn intersection_prefers_strictly_shorter() {
        let out_s = [e(0, 1, 10), e(1, 5, 1)];
        let in_t = [e(0, 1, 10), e(1, 0, 1)];
        // Hub 0: dist 2 count 100. Hub 1: dist 5.
        assert_eq!(
            intersect(&out_s, &in_t),
            Some(DistCount {
                dist: 2,
                count: 100
            })
        );
    }

    #[test]
    fn no_common_hub_is_none() {
        let out_s = [e(0, 1, 1)];
        let in_t = [e(1, 1, 1)];
        assert_eq!(intersect(&out_s, &in_t), None);
        assert_eq!(intersect(&[], &in_t), None);
    }

    #[test]
    fn worked_example_2_from_the_paper() {
        // SPCnt(v10, v8) in Figure 2: hubs {v1, v7} at ranks {0, 1}.
        // Lout(v10): (v1, 1, 1), (v7, 3, 1). Lin(v8): (v1, 3, 2), (v7, 1, 1).
        let out_v10 = [e(0, 1, 1), e(1, 3, 1)];
        let in_v8 = [e(0, 3, 2), e(1, 1, 1)];
        assert_eq!(
            intersect(&out_v10, &in_v8),
            Some(DistCount { dist: 4, count: 3 })
        );
    }

    #[test]
    fn upsert_replaces_and_inserts() {
        let mut l = Labels::new(1);
        assert_eq!(l.upsert(v(0), LabelSide::In, e(5, 4, 1)), None);
        assert_eq!(l.upsert(v(0), LabelSide::In, e(2, 1, 1)), None);
        // Replace hub 5.
        assert_eq!(l.upsert(v(0), LabelSide::In, e(5, 3, 7)), Some(e(5, 4, 1)));
        l.validate_sorted().unwrap();
        assert_eq!(l.entry_for(v(0), LabelSide::In, 5), Some(e(5, 3, 7)));
        assert_eq!(l.entry_for(v(0), LabelSide::In, 9), None);
    }

    #[test]
    fn remove_and_drain() {
        let mut l = Labels::new(1);
        for h in [1, 3, 5, 7] {
            l.append(v(0), LabelSide::Out, e(h, h, 1));
        }
        assert_eq!(l.remove(v(0), LabelSide::Out, 3), Some(e(3, 3, 1)));
        assert_eq!(l.remove(v(0), LabelSide::Out, 3), None);
        let drained = l.drain_matching(v(0), LabelSide::Out, |en| en.dist() >= 5);
        assert_eq!(drained, vec![e(5, 5, 1), e(7, 7, 1)]);
        assert_eq!(l.out_of(v(0)), &[e(1, 1, 1)]);
        assert_eq!(l.total_entries(), 1);
    }

    #[test]
    fn sizes_and_growth() {
        let mut l = Labels::new(1);
        l.append(v(0), LabelSide::In, e(0, 0, 1));
        l.push_vertex();
        assert_eq!(l.vertex_count(), 2);
        l.append(v(1), LabelSide::Out, e(0, 1, 1));
        l.append(v(1), LabelSide::Out, e(1, 1, 1));
        assert_eq!(l.total_entries(), 3);
        assert_eq!(l.entry_bytes(), 24);
        assert_eq!(l.max_label_len(), 2);
    }

    #[test]
    fn side_entry_counters_track_mutations() {
        let mut l = Labels::new(2);
        l.append(v(0), LabelSide::In, e(0, 1, 1));
        l.append(v(0), LabelSide::In, e(2, 1, 1));
        l.append(v(1), LabelSide::Out, e(0, 1, 1));
        assert_eq!(l.side_entries(LabelSide::In), 2);
        assert_eq!(l.side_entries(LabelSide::Out), 1);
        l.remove(v(0), LabelSide::In, 2);
        l.upsert(v(1), LabelSide::Out, e(3, 2, 1));
        l.upsert(v(1), LabelSide::Out, e(3, 1, 1)); // replace: no growth
        assert_eq!(l.side_entries(LabelSide::In), 1);
        assert_eq!(l.side_entries(LabelSide::Out), 2);
        let drained = l.drain_matching(v(1), LabelSide::Out, |_| true);
        assert_eq!(drained.len(), 2);
        assert_eq!(l.side_entries(LabelSide::Out), 0);
        assert_eq!(
            l.total_entries(),
            l.side_entries(LabelSide::In) + l.side_entries(LabelSide::Out)
        );
        l.validate_sorted().unwrap();
    }

    #[test]
    fn side_flip() {
        assert_eq!(LabelSide::In.flip(), LabelSide::Out);
        assert_eq!(LabelSide::Out.flip(), LabelSide::In);
    }

    #[test]
    fn validate_catches_disorder() {
        let mut l = Labels::new(1);
        // Bypass `append`'s debug assertion by upserting then mangling via
        // drain+append misuse is not possible through the public API, so
        // construct a bad state through upsert ordering (which keeps order)
        // — instead check the validator on a good state and trust the
        // debug_assert for the bad one.
        l.upsert(v(0), LabelSide::In, e(2, 1, 1));
        l.upsert(v(0), LabelSide::In, e(1, 1, 1));
        l.validate_sorted().unwrap();
    }

    #[test]
    fn slot_encoding_roundtrip() {
        for i in 0..6u32 {
            for side in [LabelSide::In, LabelSide::Out] {
                let slot = label_slot(v(i), side);
                assert_eq!(slot_list(slot), (v(i), side));
            }
        }
        assert_eq!(label_slot(v(3), LabelSide::In), 6);
        assert_eq!(label_slot(v(3), LabelSide::Out), 7);
    }

    #[test]
    fn dirty_tracking_records_each_mutated_list_once() {
        let mut l = Labels::new(3);
        assert_eq!(l.take_dirty(), Vec::<u32>::new());
        l.append(v(0), LabelSide::In, e(1, 1, 1));
        l.append(v(0), LabelSide::In, e(2, 1, 1)); // same slot, marked once
        l.upsert(v(2), LabelSide::Out, e(0, 1, 1));
        assert_eq!(l.dirty_len(), 2);
        let dirty = l.take_dirty();
        assert_eq!(dirty, vec![label_slot(v(0), LabelSide::In), 5]);
        // Drained: the set restarts empty and re-marks on new mutations.
        assert_eq!(l.dirty_len(), 0);
        l.remove(v(0), LabelSide::In, 2);
        assert_eq!(l.take_dirty(), vec![label_slot(v(0), LabelSide::In)]);
        // No-op mutations leave the set empty.
        l.remove(v(0), LabelSide::In, 9);
        let none = l.drain_matching(v(1), LabelSide::Out, |_| true);
        assert!(none.is_empty());
        assert_eq!(l.take_dirty(), Vec::<u32>::new());
    }

    #[test]
    fn push_vertex_marks_new_slots_dirty() {
        let mut l = Labels::new(1);
        l.take_dirty();
        l.push_vertex();
        assert_eq!(
            l.take_dirty(),
            vec![
                label_slot(v(1), LabelSide::In),
                label_slot(v(1), LabelSide::Out)
            ]
        );
    }

    #[test]
    fn equality_ignores_dirty_history() {
        let mut a = Labels::new(2);
        let mut b = Labels::new(2);
        a.append(v(0), LabelSide::In, e(1, 1, 1));
        b.append(v(0), LabelSide::In, e(1, 1, 1));
        b.take_dirty();
        assert_eq!(a, b, "same content, different dirty state");
        b.append(v(1), LabelSide::Out, e(0, 2, 1));
        assert_ne!(a, b);
    }

    #[test]
    fn saturating_count_arithmetic() {
        let big = crate::entry::MAX_COUNT;
        let out_s = [e(0, 1, big), e(1, 1, big)];
        let in_t = [e(0, 1, big), e(1, 1, big)];
        let dc = intersect(&out_s, &in_t).unwrap();
        assert_eq!(dc.dist, 2);
        // Products and sums saturate without overflow or panic.
        assert_eq!(dc.count, (big * big).saturating_add(big * big));
    }
}
