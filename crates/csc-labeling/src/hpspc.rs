//! HP-SPC: hub labeling for shortest-path counting (the paper's baseline,
//! after Zhang & Yu, SIGMOD 2020).
//!
//! For each hub `v` in descending rank order, a forward pruned BFS writes
//! in-labels `(v, d, c)` on every reached vertex `w` for which `v` is the
//! highest-ranked vertex on at least one shortest `v ~> w` path, and a
//! backward BFS does the same for out-labels. The count `c` is the number
//! of shortest paths on which `v` is maximal — *canonical* when that is all
//! shortest paths, *non-canonical* otherwise — which is exactly the
//! partition that makes `SPCnt` queries exact (each shortest path is
//! counted once, at its unique highest-ranked vertex).
//!
//! ## Pruning
//!
//! On dequeuing `w` at BFS distance `D[w]`, the engine evaluates the pair
//! distance through already-indexed (strictly higher-ranked) hubs:
//!
//! * `d_idx < D[w]` — every `v`-maximal path is beaten by a higher hub:
//!   prune (no label, no expansion);
//! * `d_idx == D[w]` — shortest paths tie: insert a non-canonical label and
//!   keep expanding;
//! * `d_idx > D[w]` — `v` is maximal on every shortest path: canonical.
//!
//! The BFS never enqueues vertices ranked above the hub, so counts propagate
//! only along `v`-maximal path prefixes. Both classifications and the prune
//! test are exact; see DESIGN.md §3.1 for the argument.

use crate::entry::LabelEntry;
use crate::error::LabelingError;
use crate::labels::{DistCount, LabelSide, Labels};
use crate::state::{HubCache, SearchState, INF};
use csc_graph::{Csr, DiGraph, OrderingStrategy, RankTable, VertexId};
use std::time::{Duration, Instant};

/// Counters describing one labeling construction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// Canonical label entries inserted.
    pub canonical: usize,
    /// Non-canonical label entries inserted.
    pub non_canonical: usize,
    /// BFS dequeues pruned by the index distance check.
    pub pruned: usize,
    /// Total BFS dequeues (pruned or not).
    pub dequeues: usize,
    /// Entries whose stored count saturated the 24-bit field.
    pub saturated_counts: usize,
    /// Wall-clock construction time.
    pub build_time: Duration,
}

/// A complete HP-SPC index over a directed graph.
#[derive(Clone, Debug)]
pub struct HpSpcIndex {
    labels: Labels,
    ranks: RankTable,
    stats: BuildStats,
}

impl HpSpcIndex {
    /// Builds the index with the given ordering strategy.
    pub fn build(g: &DiGraph, strategy: OrderingStrategy) -> Result<Self, LabelingError> {
        Self::build_with_ranks(g, RankTable::build(g, strategy))
    }

    /// Builds the index under an explicit vertex order.
    pub fn build_with_ranks(g: &DiGraph, ranks: RankTable) -> Result<Self, LabelingError> {
        let start = Instant::now();
        let n = g.vertex_count();
        let max = (crate::entry::MAX_HUB_RANK as usize) + 1;
        if n > max {
            return Err(LabelingError::TooManyVertices { got: n, max });
        }
        let csr = Csr::from_digraph(g);
        let mut labels = Labels::new(n);
        let mut stats = BuildStats::default();
        let mut engine = LabelingEngine::new(n);
        for hub in ranks.by_rank() {
            engine.run(&csr, &ranks, &mut labels, &mut stats, hub, true)?;
            engine.run(&csr, &ranks, &mut labels, &mut stats, hub, false)?;
        }
        stats.build_time = start.elapsed();
        Ok(HpSpcIndex {
            labels,
            ranks,
            stats,
        })
    }

    /// The label store.
    #[inline]
    pub fn labels(&self) -> &Labels {
        &self.labels
    }

    /// The vertex order used by the index.
    #[inline]
    pub fn ranks(&self) -> &RankTable {
        &self.ranks
    }

    /// Construction statistics.
    #[inline]
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// `SPCnt(s, t)`: shortest distance and number of shortest paths from
    /// `s` to `t`, or `None` if unreachable.
    pub fn sp_count(&self, s: VertexId, t: VertexId) -> Option<DistCount> {
        if s == t {
            // The hub intersection would return (0, 1) via the self label;
            // the trivial empty path is not a meaningful SPCnt answer and
            // Section III-A explains why cycle queries must not use it.
            return Some(DistCount { dist: 0, count: 1 });
        }
        self.labels.dist_count(s, t)
    }

    /// Shortest distance from `s` to `t`, or `None` if unreachable.
    pub fn dist(&self, s: VertexId, t: VertexId) -> Option<u32> {
        self.sp_count(s, t).map(|dc| dc.dist)
    }

    /// Total number of label entries (index size in the paper's Figure 9(b)
    /// is `total_entries * 8` bytes).
    pub fn total_entries(&self) -> usize {
        self.labels.total_entries()
    }
}

/// The shared pruned-BFS-with-counting engine.
///
/// `csc-core`'s CSC construction embeds the same pruning and counting rules
/// but with couple-vertex skipping; keeping this engine small and heavily
/// tested gives the bipartite variant a verified reference to diff against.
pub(crate) struct LabelingEngine {
    state: SearchState,
    cache: HubCache,
}

impl LabelingEngine {
    pub(crate) fn new(n: usize) -> Self {
        LabelingEngine {
            state: SearchState::new(n),
            cache: HubCache::new(n),
        }
    }

    /// Runs one pruned BFS from `hub`. `forward == true` builds in-labels of
    /// reached vertices; `false` walks the reverse graph and builds
    /// out-labels.
    fn run(
        &mut self,
        csr: &Csr,
        ranks: &RankTable,
        labels: &mut Labels,
        stats: &mut BuildStats,
        hub: VertexId,
        forward: bool,
    ) -> Result<(), LabelingError> {
        let hub_rank = ranks.rank(hub);
        let (source_side, target_side) = if forward {
            (LabelSide::Out, LabelSide::In)
        } else {
            (LabelSide::In, LabelSide::Out)
        };

        // Scatter the hub's source-side labels for O(1) lookups during the
        // per-vertex distance check.
        self.cache.begin();
        for e in labels.side_of(hub, source_side) {
            self.cache.put(e.hub_rank(), e.dist(), e.count());
        }
        self.cache.put(hub_rank, 0, 1);

        let state = &mut self.state;
        state.reset();
        state.visit(hub, 0, 1);
        state.queue.push_back(hub.0);

        while let Some(w) = state.queue.pop_front() {
            let w = VertexId(w);
            let dw = state.dist[w.index()];
            let cw = state.count[w.index()];
            stats.dequeues += 1;

            // Distance via strictly higher-ranked hubs already in the index.
            let mut d_idx = INF;
            for e in labels.side_of(w, target_side) {
                if let Some((dh, _)) = self.cache.get(e.hub_rank()) {
                    d_idx = d_idx.min(dh + e.dist());
                }
            }
            if d_idx < dw {
                stats.pruned += 1;
                continue;
            }

            let entry =
                LabelEntry::new(hub_rank, dw, cw).map_err(|source| LabelingError::Entry {
                    hub,
                    vertex: w,
                    source,
                })?;
            if entry.count_saturated() {
                stats.saturated_counts += 1;
            }
            labels.append(w, target_side, entry);
            if d_idx == dw {
                stats.non_canonical += 1;
            } else {
                stats.canonical += 1;
            }

            for &u in csr.nbrs(w, forward) {
                let u = VertexId(u);
                if !state.visited(u) {
                    if hub_rank < ranks.rank(u) {
                        state.visit(u, dw + 1, cw);
                        state.queue.push_back(u.0);
                    }
                } else if state.dist[u.index()] == dw + 1 {
                    state.accumulate(u, cw);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csc_graph::fixtures::{figure2, figure2_order, pv};
    use csc_graph::generators::{directed_cycle, directed_path, gnm, layered_cycle};
    use csc_graph::traversal::sp_count_pair;

    fn assert_matches_oracle(g: &DiGraph, strategy: OrderingStrategy) {
        let idx = HpSpcIndex::build(g, strategy).unwrap();
        idx.labels().validate_sorted().unwrap();
        for s in g.vertices() {
            for t in g.vertices() {
                if s == t {
                    continue;
                }
                let oracle = sp_count_pair(g, s, t);
                let got = idx.sp_count(s, t).map(|dc| (dc.dist, dc.count));
                assert_eq!(got, oracle, "SPCnt({s}, {t}) under {strategy:?}");
            }
        }
    }

    #[test]
    fn exact_on_figure2_with_paper_order() {
        let g = figure2();
        let ranks = RankTable::from_order(&figure2_order());
        let idx = HpSpcIndex::build_with_ranks(&g, ranks).unwrap();
        // Example 2: SPCnt(v10, v8) = 3 at distance 4.
        let dc = idx.sp_count(pv(10), pv(8)).unwrap();
        assert_eq!((dc.dist, dc.count), (4, 3));
        // Example 3 distances.
        assert_eq!(idx.dist(pv(7), pv(4)), Some(5));
        assert_eq!(idx.dist(pv(7), pv(5)), Some(5));
        assert_eq!(idx.dist(pv(7), pv(6)), Some(6));
        // Full oracle sweep.
        for s in g.vertices() {
            for t in g.vertices() {
                if s != t {
                    let oracle = sp_count_pair(&g, s, t);
                    assert_eq!(
                        idx.sp_count(s, t).map(|dc| (dc.dist, dc.count)),
                        oracle,
                        "pair ({s}, {t})"
                    );
                }
            }
        }
    }

    #[test]
    fn table_ii_label_shapes() {
        // Under the paper's order, v1 gets only its self labels and v7's
        // in-label carries (v1, 2, 2) — the two shortest v1 ~> v7 paths.
        let g = figure2();
        let ranks = RankTable::from_order(&figure2_order());
        let idx = HpSpcIndex::build_with_ranks(&g, ranks).unwrap();
        assert_eq!(idx.labels().in_of(pv(1)).len(), 1);
        assert_eq!(idx.labels().out_of(pv(1)).len(), 1);
        let in_v7 = idx.labels().in_of(pv(7));
        // (v1 @ rank 0, dist 2, count 2) then the self label (rank 1).
        assert_eq!(in_v7.len(), 2);
        assert_eq!(in_v7[0].hub_rank(), 0);
        assert_eq!(in_v7[0].dist(), 2);
        assert_eq!(in_v7[0].count(), 2);
        assert_eq!(in_v7[1].hub_rank(), 1); // v7's own rank
        assert_eq!(in_v7[1].dist(), 0);

        // Table II's non-canonical example: Lout(v10) holds (v4, 2, 1) even
        // though there are two shortest v10 ~> v4 paths (the other passes
        // through the higher-ranked v1).
        let out_v10 = idx.labels().out_of(pv(10));
        let v4_rank = idx.ranks().rank(pv(4));
        let e = out_v10.iter().find(|e| e.hub_rank() == v4_rank).unwrap();
        assert_eq!((e.dist(), e.count()), (2, 1));
        assert!(idx.stats().non_canonical > 0);
    }

    #[test]
    fn exact_on_deterministic_families() {
        assert_matches_oracle(&directed_cycle(9), OrderingStrategy::Degree);
        assert_matches_oracle(&directed_path(8), OrderingStrategy::Degree);
        assert_matches_oracle(&layered_cycle(&[2, 3, 2]), OrderingStrategy::Degree);
    }

    #[test]
    fn exact_on_random_graphs_any_order() {
        for seed in 0..8 {
            let g = gnm(24, 60, seed);
            assert_matches_oracle(&g, OrderingStrategy::Degree);
            assert_matches_oracle(&g, OrderingStrategy::Identity);
            assert_matches_oracle(&g, OrderingStrategy::Random(seed));
        }
    }

    #[test]
    fn self_query_is_trivial() {
        let g = directed_cycle(4);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        let dc = idx.sp_count(VertexId(0), VertexId(0)).unwrap();
        assert_eq!((dc.dist, dc.count), (0, 1));
    }

    #[test]
    fn disconnected_pairs_are_none() {
        let g = DiGraph::from_edges(4, vec![(0, 1), (2, 3)]);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        assert_eq!(idx.sp_count(VertexId(0), VertexId(3)), None);
        assert_eq!(idx.dist(VertexId(1), VertexId(0)), None);
    }

    #[test]
    fn empty_and_single_vertex_graphs() {
        let g = DiGraph::new(0);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        assert_eq!(idx.total_entries(), 0);
        let g = DiGraph::new(1);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        assert_eq!(idx.total_entries(), 2); // self in + out
    }

    #[test]
    fn stats_are_plausible() {
        let g = gnm(60, 240, 5);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        let s = idx.stats();
        assert_eq!(
            s.canonical + s.non_canonical,
            idx.total_entries(),
            "every entry is classified"
        );
        assert!(s.dequeues >= s.pruned);
        assert!(idx.labels().max_label_len() <= idx.total_entries());
    }

    #[test]
    fn distance_overflow_reported() {
        // A path longer than the 17-bit distance field.
        let n = crate::entry::MAX_DIST as usize + 3;
        let g = directed_path(n);
        // Identity order makes vertex 0 the first hub, whose BFS spans the
        // whole path and must overflow.
        let err = HpSpcIndex::build(&g, OrderingStrategy::Identity).unwrap_err();
        assert!(matches!(err, LabelingError::Entry { .. }), "{err}");
    }

    #[test]
    fn counts_saturate_instead_of_wrapping() {
        // 2^13 per half-cycle... keep it small: widths of 2 give 2^k counts.
        let widths = vec![2usize; 26]; // 2^25 shortest cycles > 2^24 cap
        let g = layered_cycle(&widths);
        let idx = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        assert!(idx.stats().saturated_counts > 0);
        // Distances still exact everywhere even when counts saturate.
        let d = idx.dist(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(d, 1);
    }
}
