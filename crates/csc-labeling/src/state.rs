//! Reusable search state for the pruned-BFS label constructions.
//!
//! One labeling run performs `n` BFS traversals; allocating distance/count
//! arrays per hub would dominate the runtime. [`SearchState`] keeps the
//! arrays alive and resets only the entries touched by the previous
//! traversal (the classic "timestamp-free" sparse reset), and [`HubCache`]
//! is the epoch-stamped scatter array that makes the per-vertex distance
//! check `O(|label|)` instead of `O(|label| log |label|)`.

use csc_graph::VertexId;
use std::collections::VecDeque;

/// Sentinel for "not visited".
pub const INF: u32 = u32::MAX;

/// Distance/count arrays plus the BFS queue, reusable across traversals.
#[derive(Clone, Debug)]
pub struct SearchState {
    /// Tentative distances (`INF` = unvisited).
    pub dist: Vec<u32>,
    /// Tentative shortest-path counts.
    pub count: Vec<u64>,
    /// FIFO queue of vertex ids.
    pub queue: VecDeque<u32>,
    touched: Vec<u32>,
}

impl SearchState {
    /// Creates state for `n` vertices.
    pub fn new(n: usize) -> Self {
        SearchState {
            dist: vec![INF; n],
            count: vec![0; n],
            queue: VecDeque::new(),
            touched: Vec::new(),
        }
    }

    /// Number of vertices the state covers.
    pub fn len(&self) -> usize {
        self.dist.len()
    }

    /// `true` if sized for zero vertices.
    pub fn is_empty(&self) -> bool {
        self.dist.is_empty()
    }

    /// Grows the state to cover at least `n` vertices.
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, INF);
            self.count.resize(n, 0);
        }
    }

    /// Marks `v` visited with distance `d` and count `c` and records it for
    /// the sparse reset.
    #[inline]
    pub fn visit(&mut self, v: VertexId, d: u32, c: u64) {
        let i = v.index();
        debug_assert_eq!(self.dist[i], INF, "visit() on an already-visited vertex");
        self.dist[i] = d;
        self.count[i] = c;
        self.touched.push(v.0);
    }

    /// Adds `c` shortest paths to an already-visited vertex.
    #[inline]
    pub fn accumulate(&mut self, v: VertexId, c: u64) {
        let i = v.index();
        self.count[i] = self.count[i].saturating_add(c);
    }

    /// Overwrites distance/count of an already-visited vertex (dynamic
    /// passes relax distances downward).
    #[inline]
    pub fn relax(&mut self, v: VertexId, d: u32, c: u64) {
        let i = v.index();
        debug_assert_ne!(self.dist[i], INF, "relax() on an unvisited vertex");
        self.dist[i] = d;
        self.count[i] = c;
    }

    /// `true` if `v` has been visited since the last reset.
    #[inline]
    pub fn visited(&self, v: VertexId) -> bool {
        self.dist[v.index()] != INF
    }

    /// Clears only the touched entries and the queue (O(traversal size)).
    pub fn reset(&mut self) {
        for &v in &self.touched {
            self.dist[v as usize] = INF;
            self.count[v as usize] = 0;
        }
        self.touched.clear();
        self.queue.clear();
    }

    /// The vertices touched since the last reset (in visit order).
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// Heap bytes held by the arrays and queue (capacity, not length —
    /// this is what the memory-budget accounting charges).
    pub fn heap_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<u32>()
            + self.count.capacity() * std::mem::size_of::<u64>()
            + self.queue.capacity() * std::mem::size_of::<u32>()
            + self.touched.capacity() * std::mem::size_of::<u32>()
    }
}

/// Epoch-stamped scatter array: holds the current hub's own label (hub rank
/// -> distance/count) so that the per-dequeued-vertex distance check scans
/// only the *other* side's label list.
#[derive(Clone, Debug)]
pub struct HubCache {
    dist: Vec<u32>,
    count: Vec<u64>,
    epoch: Vec<u32>,
    current: u32,
}

impl HubCache {
    /// Creates a cache keyed by ranks `0..n`.
    pub fn new(n: usize) -> Self {
        HubCache {
            dist: vec![0; n],
            count: vec![0; n],
            epoch: vec![0; n],
            current: 0,
        }
    }

    /// Grows the cache to cover at least `n` ranks.
    pub fn ensure(&mut self, n: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, 0);
            self.count.resize(n, 0);
            self.epoch.resize(n, 0);
        }
    }

    /// Starts a new scatter epoch (O(1)); previous contents become stale.
    pub fn begin(&mut self) {
        self.current = self.current.wrapping_add(1);
        if self.current == 0 {
            // Epoch counter wrapped: hard-reset stamps so stale entries
            // cannot alias the new epoch. Happens once per 2^32 traversals.
            self.epoch.fill(0);
            self.current = 1;
        }
    }

    /// Records `(dist, count)` for `hub_rank` in the current epoch.
    #[inline]
    pub fn put(&mut self, hub_rank: u32, dist: u32, count: u64) {
        let i = hub_rank as usize;
        self.dist[i] = dist;
        self.count[i] = count;
        self.epoch[i] = self.current;
    }

    /// Fetches the current-epoch value for `hub_rank`, if set.
    #[inline]
    pub fn get(&self, hub_rank: u32) -> Option<(u32, u64)> {
        let i = hub_rank as usize;
        (self.epoch[i] == self.current).then(|| (self.dist[i], self.count[i]))
    }

    /// Heap bytes held by the scatter arrays (capacity, not length).
    pub fn heap_bytes(&self) -> usize {
        self.dist.capacity() * std::mem::size_of::<u32>()
            + self.count.capacity() * std::mem::size_of::<u64>()
            + self.epoch.capacity() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VertexId {
        VertexId(i)
    }

    #[test]
    fn visit_accumulate_reset() {
        let mut s = SearchState::new(4);
        s.visit(v(1), 0, 1);
        s.visit(v(2), 1, 1);
        s.accumulate(v(2), 2);
        assert!(s.visited(v(1)));
        assert_eq!(s.dist[2], 1);
        assert_eq!(s.count[2], 3);
        assert_eq!(s.touched(), &[1, 2]);
        s.reset();
        assert!(!s.visited(v(1)));
        assert!(!s.visited(v(2)));
        assert_eq!(s.count[2], 0);
        assert!(s.touched().is_empty());
    }

    #[test]
    fn relax_overwrites() {
        let mut s = SearchState::new(2);
        s.visit(v(0), 5, 9);
        s.relax(v(0), 3, 2);
        assert_eq!((s.dist[0], s.count[0]), (3, 2));
    }

    #[test]
    fn accumulate_saturates() {
        let mut s = SearchState::new(1);
        s.visit(v(0), 0, u64::MAX - 1);
        s.accumulate(v(0), 5);
        assert_eq!(s.count[0], u64::MAX);
    }

    #[test]
    fn ensure_grows() {
        let mut s = SearchState::new(1);
        s.ensure(10);
        assert_eq!(s.len(), 10);
        s.visit(v(9), 1, 1);
        assert!(s.visited(v(9)));
        s.ensure(5); // never shrinks
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn hub_cache_epochs_are_cheap() {
        let mut c = HubCache::new(4);
        c.begin();
        c.put(2, 7, 3);
        assert_eq!(c.get(2), Some((7, 3)));
        assert_eq!(c.get(1), None);
        c.begin();
        assert_eq!(c.get(2), None, "previous epoch invisible");
        c.put(2, 1, 1);
        assert_eq!(c.get(2), Some((1, 1)));
    }

    #[test]
    fn hub_cache_grows() {
        let mut c = HubCache::new(1);
        c.ensure(8);
        c.begin();
        c.put(7, 1, 1);
        assert_eq!(c.get(7), Some((1, 1)));
    }

    #[test]
    fn queue_reset() {
        let mut s = SearchState::new(3);
        s.queue.push_back(1);
        s.queue.push_back(2);
        s.reset();
        assert!(s.queue.is_empty());
    }
}
