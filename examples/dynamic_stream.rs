//! Continuous monitoring over an edge stream (the paper's dynamic setting).
//!
//! A writer thread applies a stream of edge insertions and deletions to a
//! [`ConcurrentIndex`] while reader threads continuously screen vertices
//! against published [`SnapshotIndex`]es — the lock-free serving path, so
//! the readers never wait on the writer's label maintenance. The refresh
//! policy (`snapshot_every = 16`) amortizes the snapshot freeze over
//! update bursts; at the end, the final index state is audited entry by
//! entry against a from-scratch rebuild.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use csc::graph::generators::preferential_attachment;
use csc::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

fn main() -> Result<(), CscError> {
    let g = preferential_attachment(3_000, 3, 0.25, 99);
    println!(
        "base graph: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );

    // Republish the read snapshot every 16 updates: readers lag by at most
    // 15 updates and the writer only pays the freeze cost 1/16th of the
    // time.
    let config = CscConfig::default().with_snapshot_every(16);
    let index = Arc::new(ConcurrentIndex::new(CscIndex::build(&g, config)?));
    let stop = Arc::new(AtomicBool::new(false));
    let queries_answered = Arc::new(AtomicUsize::new(0));

    // Readers: continuously screen random vertices on the current
    // snapshot. Grabbing the snapshot once per sweep means the whole sweep
    // sees one consistent state and touches no lock at all.
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let index = Arc::clone(&index);
            let stop = Arc::clone(&stop);
            let answered = Arc::clone(&queries_answered);
            std::thread::spawn(move || {
                let mut x: u32 = 0x9E37 + t;
                let mut local = 0;
                while !stop.load(Ordering::Relaxed) {
                    let snapshot = index.snapshot();
                    for _ in 0..64 {
                        x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                        let v = VertexId(x % 3_000);
                        if snapshot.query(v).is_some() {
                            local += 1;
                        }
                    }
                }
                answered.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();

    // Writer: replay a stream of 300 updates (deletions of existing edges
    // interleaved with fresh insertions), mirroring the paper's protocol.
    let mut live = g.clone();
    let mut rng: u64 = 2022;
    let mut next = move || {
        rng = rng
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng
    };
    let mut inserts = 0;
    let mut deletes = 0;
    let mut insert_time = std::time::Duration::ZERO;
    let mut delete_time = std::time::Duration::ZERO;
    while inserts + deletes < 300 {
        let coin = next();
        if coin % 3 == 0 && live.edge_count() > 100 {
            // Delete a pseudo-random existing edge.
            let edges = live.edge_vec();
            let (u, v) = edges[(next() % edges.len() as u64) as usize];
            live.try_remove_edge(VertexId(u), VertexId(v)).unwrap();
            let r = index.remove_edge(VertexId(u), VertexId(v))?;
            delete_time += r.duration;
            deletes += 1;
        } else {
            let a = VertexId((next() % 3_000) as u32);
            let b = VertexId((next() % 3_000) as u32);
            if a != b && !live.has_edge(a, b) {
                live.try_add_edge(a, b).unwrap();
                let r = index.insert_edge(a, b)?;
                insert_time += r.duration;
                inserts += 1;
            }
        }
    }
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread");
    }

    println!(
        "stream applied: {inserts} insertions (avg {:?}), {deletes} deletions (avg {:?})",
        insert_time / inserts.max(1),
        delete_time / deletes.max(1),
    );
    println!(
        "readers answered {} snapshot queries concurrently",
        queries_answered.load(Ordering::Relaxed)
    );
    let stats = index.snapshot_stats();
    println!(
        "snapshots published: {} (served snapshot {} updates behind the writer)",
        stats.published, stats.pending_updates
    );
    // Make the final state visible to snapshot readers before the audit.
    index.refresh();

    // Audit: the streamed index must agree with a from-scratch rebuild.
    let streamed = Arc::try_unwrap(index)
        .ok()
        .expect("all readers joined")
        .into_inner();
    let rebuilt = CscIndex::build(&live, CscConfig::default())?;
    let mut checked = 0;
    for v in live.vertices() {
        assert_eq!(
            streamed.query(v),
            rebuilt.query(v),
            "streamed index diverged at {v}"
        );
        checked += 1;
    }
    println!("audit passed: {checked} vertices agree with a full rebuild");
    println!(
        "index sizes: streamed {} entries vs rebuilt {} entries \
         (redundancy strategy keeps dominated entries)",
        streamed.total_entries(),
        rebuilt.total_entries()
    );
    Ok(())
}
