//! Fraud detection (the paper's Application 1, Figures 1 and 13).
//!
//! Money-laundering rings route funds in short cycles through criminal
//! accounts. We generate a transaction network with planted rings, screen
//! every account by its shortest-cycle profile, and watch the index track
//! live transactions — including a new ring forming in real time.
//!
//! ```sh
//! cargo run --release --example fraud_detection
//! ```

use csc::graph::generators::{laundering_network, LaunderingParams};
use csc::prelude::*;

fn main() -> Result<(), CscError> {
    let params = LaunderingParams {
        accounts: 4_000,
        background_edges: 12_000,
        criminals: 6,
        cycles_per_criminal: 9,
        cycle_len: 4,
    };
    let net = laundering_network(params, 2022);
    println!(
        "transaction network: {} accounts, {} transfers, {} planted rings",
        net.graph.vertex_count(),
        net.graph.edge_count(),
        net.criminals.len()
    );

    let mut index = CscIndex::build(&net.graph, CscConfig::default())?;
    println!(
        "index built in {:?} ({} entries)\n",
        index.stats().build.build_time,
        index.total_entries()
    );

    // Screen: among accounts whose shortest cycle is *short* (laundering
    // rings are short by construction — Figure 1), rank by cycle count.
    // Raw counts are not comparable across lengths: shortest-path counts
    // multiply combinatorially with length, so long-cycle hubs would
    // otherwise drown out the rings.
    let max_ring_len = 4;
    let mut suspects: Vec<(VertexId, u32, u64)> = (0..net.graph.vertex_count() as u32)
        .filter_map(|v| {
            let v = VertexId(v);
            index.query(v).map(|c| (v, c.length, c.count))
        })
        .filter(|&(_, len, _)| len <= max_ring_len)
        .collect();
    suspects.sort_by(|a, b| b.2.cmp(&a.2).then(a.1.cmp(&b.1)));

    println!("top suspects by shortest-cycle profile:");
    println!(
        "{:<6} {:>8} {:>10} {:>9}  planted?",
        "rank", "account", "cycle len", "cycles"
    );
    let planted: std::collections::HashSet<u32> = net.criminals.iter().map(|c| c.0).collect();
    let mut hits = 0;
    for (rank, (v, len, count)) in suspects.iter().take(8).enumerate() {
        let mark = planted.contains(&v.0);
        hits += usize::from(rank < net.criminals.len() && mark);
        println!(
            "{:<6} {:>8} {:>10} {:>9}  {}",
            rank + 1,
            v.0,
            len,
            count,
            if mark { "YES" } else { "-" }
        );
    }
    println!(
        "\nrecovered {hits}/{} planted criminals in the top-{}\n",
        net.criminals.len(),
        net.criminals.len()
    );
    assert!(
        hits * 2 >= net.criminals.len(),
        "screening should catch most rings"
    );

    // Live monitoring: a *new* ring forms through a so-far clean account
    // (pick one that currently sits on no cycle at all).
    let mule = (0..net.graph.vertex_count() as u32)
        .map(VertexId)
        .find(|&v| index.query(v).is_none())
        .expect("some account is cycle-free");
    let before = index.query(mule).map(|c| c.count).unwrap_or(0);
    let hop1 = VertexId((mule.0 + 7) % 400);
    let hop2 = VertexId((mule.0 + 13) % 400);
    for (a, b) in [(mule, hop1), (hop1, hop2), (hop2, mule)] {
        if !index.contains_edge(a, b) {
            let report = index.insert_edge(a, b)?;
            println!("transaction {a} -> {b} indexed in {:?}", report.duration);
        }
    }
    let after = index.query(mule).expect("mule now sits on a ring");
    println!(
        "account {mule}: {} shortest cycles (len {}) — was {before} before the ring closed",
        after.count, after.length
    );
    assert!(after.count >= 1 && after.length <= 3);

    Ok(())
}
