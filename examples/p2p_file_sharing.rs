//! P2P file-sharing optimization (the paper's Application 2).
//!
//! In a Gnutella-style overlay, a host whose shortest request/transfer
//! cycles are *numerous* is both failure-tolerant and easy to reach — the
//! paper's criterion for placing index servers. Hosts with *long* shortest
//! cycles are candidates for proxy placement. This example picks index
//! servers on a synthetic overlay and validates the choice against the
//! BFS baseline.
//!
//! ```sh
//! cargo run --release --example p2p_file_sharing
//! ```

use csc::graph::generators::gnm;
use csc::prelude::*;

fn main() -> Result<(), CscError> {
    // A Gnutella-04-like overlay: flat degree distribution.
    let n = 3_000;
    let overlay = gnm(n, 12_000, 7);
    println!(
        "overlay: {} hosts, {} interactions",
        overlay.vertex_count(),
        overlay.edge_count()
    );

    let index = CscIndex::build(&overlay, CscConfig::default())?;
    println!(
        "index built in {:?}; {} entries\n",
        index.stats().build.build_time,
        index.total_entries()
    );

    // Score every host: index servers want many, short feedback cycles.
    let mut hosts: Vec<(VertexId, u32, u64)> = overlay
        .vertices()
        .filter_map(|v| index.query(v).map(|c| (v, c.length, c.count)))
        .collect();

    // Index-server candidates: shortest cycle length minimal, count maximal.
    hosts.sort_by(|a, b| a.1.cmp(&b.1).then(b.2.cmp(&a.2)));
    println!("index-server candidates (short + numerous cycles):");
    for (v, len, count) in hosts.iter().take(5) {
        println!("  host {v:>6}: {count:>6} shortest cycles of length {len}");
    }

    // Proxy candidates: hosts whose shortest cycles are long (expensive
    // feedback paths) — the paper suggests fronting them with a proxy.
    let mut by_length = hosts.clone();
    by_length.sort_by(|a, b| b.1.cmp(&a.1).then(a.2.cmp(&b.2)));
    println!("\nproxy candidates (long feedback cycles):");
    for (v, len, count) in by_length.iter().take(5) {
        println!("  host {v:>6}: cycles of length {len} (x{count})");
    }

    // Spot-check the ranking against the O(n+m) baseline.
    let mut engine = BfsCycleEngine::new(overlay.vertex_count());
    for (v, len, count) in hosts.iter().take(3) {
        let reference = engine.query(&overlay, *v).expect("host is on a cycle");
        assert_eq!((reference.length, reference.count), (*len, *count));
    }
    println!("\nBFS baseline confirms the top candidates.");

    // Churn: the best candidate goes offline (its links drop); re-rank
    // cheaply via the dynamic index instead of recomputing everything.
    let mut index = index;
    let (gone, ..) = hosts[0];
    let out: Vec<u32> = overlay.nbr_out(gone).to_vec();
    let inn: Vec<u32> = overlay.nbr_in(gone).to_vec();
    let (mut removed, mut total) = (0, std::time::Duration::ZERO);
    for w in out {
        let r = index.remove_edge(gone, VertexId(w))?;
        removed += 1;
        total += r.duration;
    }
    for u in inn {
        let r = index.remove_edge(VertexId(u), gone)?;
        removed += 1;
        total += r.duration;
    }
    println!("host {gone} went offline: {removed} links retired in {total:?} total");
    assert_eq!(index.query(gone), None, "offline host sits on no cycle");

    let best = overlay
        .vertices()
        .filter(|&v| v != gone)
        .filter_map(|v| index.query(v).map(|c| (v, c)))
        .min_by(|a, b| a.1.length.cmp(&b.1.length).then(b.1.count.cmp(&a.1.count)));
    if let Some((v, c)) = best {
        println!(
            "new index-server pick: host {v} ({} cycles of length {})",
            c.count, c.length
        );
    }
    Ok(())
}
