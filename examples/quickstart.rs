//! Quickstart: build an index, query it, and keep it synchronized with a
//! changing graph.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use csc::prelude::*;

fn main() -> Result<(), CscError> {
    // The worked example from the paper (Figure 2): ten vertices, three
    // shortest cycles of length 6 through v7.
    let g = csc::graph::fixtures::figure2();
    let v7 = csc::graph::fixtures::pv(7);

    println!(
        "graph: {} vertices, {} edges",
        g.vertex_count(),
        g.edge_count()
    );

    // 1. Build the CSC index.
    let mut index = CscIndex::build(&g, CscConfig::default())?;
    println!(
        "index: {} label entries ({} bytes), built in {:?}",
        index.total_entries(),
        index.index_bytes(),
        index.stats().build.build_time
    );

    // 2. Query: how many shortest cycles pass through v7?
    let c = index.query(v7).expect("v7 lies on cycles");
    println!(
        "SCCnt(v7) = {} shortest cycles of length {}",
        c.count, c.length
    );
    assert_eq!((c.length, c.count), (6, 3)); // Example 1 of the paper

    // 3. The graph evolves: a new edge creates a shortcut cycle.
    let report = index.insert_edge(csc::graph::fixtures::pv(8), v7)?;
    println!(
        "inserted edge v8 -> v7 in {:?} ({} label entries touched)",
        report.duration,
        report.entries_inserted + report.entries_updated
    );
    let c = index.query(v7).expect("cycles remain");
    println!("SCCnt(v7) is now {} cycles of length {}", c.count, c.length);
    assert_eq!((c.length, c.count), (2, 1)); // v7 -> v8 -> v7

    // 4. And shrinks again.
    index.remove_edge(csc::graph::fixtures::pv(8), v7)?;
    let c = index.query(v7).expect("original cycles restored");
    assert_eq!((c.length, c.count), (6, 3));
    println!(
        "after deletion SCCnt(v7) is back to {} cycles of length {}",
        c.count, c.length
    );

    // 5. Compare against the index-free baseline: same answers, no index.
    let baseline = scc_count_bfs(&g, v7).unwrap();
    assert_eq!((baseline.length, baseline.count), (6, 3));
    println!(
        "BFS baseline agrees: {} cycles of length {}",
        baseline.count, baseline.length
    );

    Ok(())
}
