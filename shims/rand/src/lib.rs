//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements the subset this workspace uses: a seedable deterministic
//! generator ([`rngs::StdRng`], xoshiro256++ seeded via SplitMix64),
//! [`Rng::gen_range`] / [`Rng::gen_bool`], and
//! [`seq::SliceRandom::shuffle`]. The stream differs from the real
//! `StdRng` (which is ChaCha12), but every consumer in this workspace only
//! relies on determinism and uniformity, not on a specific stream.

#![forbid(unsafe_code)]

/// A generator seedable from a `u64` (subset of the real trait).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core random-value interface (subset of the real trait).
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive integer ranges).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        // 53 uniform mantissa bits, exactly like rand's `standard` f64.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256++ here; the real
    /// crate's `StdRng` is ChaCha12 — streams differ, quality is comparable
    /// for test/benchmark workloads).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Range sampling machinery (subset of `rand::distributions`).
pub mod distributions {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A range that can be sampled uniformly (subset of the real trait).
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_uint_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + uniform_below(rng, span) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_below(rng, span + 1) as $t
                }
            }
        )*};
    }

    impl_uint_range!(u8, u16, u32, u64, usize);

    /// Unbiased uniform draw from `0..n` (Lemire-style rejection).
    fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
        debug_assert!(n > 0);
        if n.is_power_of_two() {
            return rng.next_u64() & (n - 1);
        }
        let zone = u64::MAX - (u64::MAX - n + 1) % n;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return v % n;
            }
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (subset of the real trait).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u32> = (0..8).map(|_| a.gen_range(0..1000u32)).collect();
        let ys: Vec<u32> = (0..8).map(|_| b.gen_range(0..1000u32)).collect();
        let zs: Vec<u32> = (0..8).map(|_| c.gen_range(0..1000u32)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(10usize..15);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values drawn in 200 tries");
        for _ in 0..50 {
            let v = rng.gen_range(3u32..=3);
            assert_eq!(v, 3);
        }
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!(
            (4_000..6_000).contains(&heads),
            "{heads} heads out of 10000"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
