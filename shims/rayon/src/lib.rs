//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the subset this workspace uses on top of a real global
//! work-stealing thread pool:
//!
//! * data-parallel iterators — `par_iter()` over slices and
//!   `into_par_iter()` over `Range<usize>` / `Range<u32>` / `Range<u64>`,
//!   with `map` / `filter_map` / `for_each` / `collect` / `sum`. Results
//!   are concatenated in source order, so `collect::<Vec<_>>()` is
//!   order-preserving exactly like the real crate;
//! * [`scope`] — structured fork/join: spawned closures may borrow from
//!   the enclosing stack frame, the scope blocks until every spawned task
//!   has finished, and a panic inside any task is re-raised on the caller
//!   with its **original payload** (so `catch_unwind`-based degradation
//!   paths upstream observe the same panic they would under a plain
//!   sequential call);
//! * [`current_num_threads`] — the pool width.
//!
//! The pool is created lazily on first use and sized by the
//! `CSC_THREADS` environment variable, falling back to
//! `available_parallelism`. Each worker owns a local deque; tasks spawned
//! from a worker go to its own deque, tasks spawned from outside go to a
//! shared injector, and idle workers steal from the back of their
//! siblings' deques. A thread blocked in [`scope`] does not idle: it
//! *helps*, draining tasks from the pool while it waits, which makes
//! nested scopes deadlock-free even on a single-worker pool.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Below this many items the "parallel" iterators run inline: spawning
/// tasks costs more than the work.
const SEQUENTIAL_CUTOFF: usize = 512;

/// How long an idle worker sleeps between wake-up checks. Wake-ups are
/// also signalled eagerly on every push; the timeout is a backstop.
const IDLE_PARK: Duration = Duration::from_millis(50);

/// How long a scope waiter parks when the pool has no runnable task for
/// it to help with.
const HELP_PARK: Duration = Duration::from_millis(1);

// ---------------------------------------------------------------------------
// The work-stealing pool
// ---------------------------------------------------------------------------

/// A unit of queued work. Tasks are spawned with a `'scope` lifetime and
/// transmuted to `'static` for storage; soundness is provided by
/// [`scope`], which never returns while one of its tasks is live.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-width work-stealing pool: one shared injector plus one local
/// deque per worker.
struct Pool {
    /// Overflow queue for tasks spawned from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Per-worker local deques; owner pops the front, thieves the back.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Queued-task count across all queues (fast idle check).
    queued: AtomicUsize,
    /// Wake-up generation counter, paired with `wake`.
    sleep: Mutex<u64>,
    wake: Condvar,
    /// Number of worker threads.
    width: usize,
}

std::thread_local! {
    /// Index of the pool worker running on this thread, if any.
    static WORKER_INDEX: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

impl Pool {
    /// Creates a pool with `width` worker threads (at least one).
    fn new(width: usize) -> Arc<Pool> {
        let width = width.max(1);
        let pool = Arc::new(Pool {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..width).map(|_| Mutex::new(VecDeque::new())).collect(),
            queued: AtomicUsize::new(0),
            sleep: Mutex::new(0),
            wake: Condvar::new(),
            width,
        });
        for i in 0..width {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name(format!("csc-worker-{i}"))
                .spawn(move || pool.worker_loop(i))
                .expect("failed to spawn pool worker");
        }
        pool
    }

    /// Enqueues a task: onto the local deque when called from a worker,
    /// onto the shared injector otherwise.
    fn push(&self, job: Job) {
        let slot = WORKER_INDEX.with(std::cell::Cell::get);
        match slot {
            Some(i) if i < self.locals.len() => {
                self.locals[i].lock().unwrap().push_back(job);
            }
            _ => self.injector.lock().unwrap().push_back(job),
        }
        self.queued.fetch_add(1, Ordering::SeqCst);
        let mut gen = self.sleep.lock().unwrap();
        *gen = gen.wrapping_add(1);
        drop(gen);
        self.wake.notify_all();
    }

    /// Takes one task: own deque front first (when on a worker), then the
    /// injector, then steal from the back of sibling deques.
    fn pop_any(&self) -> Option<Job> {
        if self.queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let own = WORKER_INDEX.with(std::cell::Cell::get);
        if let Some(i) = own {
            if let Some(job) = self.locals[i].lock().unwrap().pop_front() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            self.queued.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        for (k, local) in self.locals.iter().enumerate() {
            if Some(k) == own {
                continue;
            }
            if let Some(job) = local.lock().unwrap().pop_back() {
                self.queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }

    /// The body of worker `index`: run tasks until the process exits.
    fn worker_loop(self: Arc<Pool>, index: usize) {
        WORKER_INDEX.with(|slot| slot.set(Some(index)));
        loop {
            if let Some(job) = self.pop_any() {
                job();
                continue;
            }
            let gen = self.sleep.lock().unwrap();
            if self.queued.load(Ordering::SeqCst) > 0 {
                continue;
            }
            // Parking under the same lock `push` bumps the generation
            // through closes the check-then-wait race; the timeout is a
            // belt-and-braces backstop.
            let _ = self.wake.wait_timeout(gen, IDLE_PARK).unwrap();
        }
    }
}

/// Pool width requested by the environment: `CSC_THREADS` when set to a
/// positive integer, otherwise `available_parallelism`.
fn env_width() -> usize {
    std::env::var("CSC_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// The lazily-created global pool.
fn global_pool() -> &'static Arc<Pool> {
    static POOL: OnceLock<Arc<Pool>> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(env_width()))
}

/// Number of worker threads in the global pool (`CSC_THREADS` or the
/// machine's available parallelism; read once, at first use).
pub fn current_num_threads() -> usize {
    global_pool().width
}

// ---------------------------------------------------------------------------
// Scopes
// ---------------------------------------------------------------------------

/// Shared bookkeeping for one [`scope`] invocation.
struct ScopeState {
    /// Spawned-but-unfinished task count, guarded for use with `done`.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed in any task of this scope.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    fn finish_one(&self) {
        let mut left = self.remaining.lock().unwrap();
        *left -= 1;
        if *left == 0 {
            self.done.notify_all();
        }
    }
}

/// A fork/join scope handed to the closure passed to [`scope`]. Tasks
/// spawned through it may borrow anything that outlives the scope.
pub struct Scope<'scope> {
    pool: &'scope Arc<Pool>,
    state: Arc<ScopeState>,
    /// Makes `'scope` invariant, as borrowed spawns require.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Spawns `f` onto the pool. The closure may borrow from the stack
    /// frame enclosing the [`scope`] call; it runs at most once, and the
    /// scope does not return before it completes.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.remaining.lock().unwrap() += 1;
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(f)) {
                state.panic.lock().unwrap().get_or_insert(payload);
            }
            state.finish_one();
        });
        // SAFETY: the job is only queued and run while the owning scope is
        // blocked in `wait`; `scope` never returns (normally or by panic)
        // until `remaining` reaches zero, i.e. until after this closure —
        // and every `'scope` borrow inside it — has been dropped. The
        // transmute only erases the lifetime; the layout of a boxed trait
        // object does not depend on it.
        let job: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) };
        self.pool.push(job);
    }
}

/// Creates a fork/join scope on the global pool: `op` may spawn borrowed
/// tasks through the [`Scope`] it receives, and `scope` returns only once
/// every spawned task has finished. While waiting, the calling thread
/// helps drain the pool, so nested scopes cannot deadlock. If any task
/// panicked, the first captured payload is re-raised here via
/// [`std::panic::resume_unwind`] (after all tasks have settled), keeping
/// upstream `catch_unwind` handlers and their panic messages intact.
pub fn scope<'scope, R>(op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    scope_on(global_pool(), op)
}

/// [`scope`] against an explicit pool (exercised directly by the tests).
fn scope_on<'scope, R>(pool: &'scope Arc<Pool>, op: impl FnOnce(&Scope<'scope>) -> R) -> R {
    let scope = Scope {
        pool,
        state: Arc::new(ScopeState {
            remaining: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }),
        _marker: PhantomData,
    };
    // Run the body under catch_unwind so a panic in `op` itself still
    // waits for already-spawned tasks before unwinding out.
    let body = panic::catch_unwind(AssertUnwindSafe(|| op(&scope)));

    // Help-first wait: run queued tasks (any scope's) while our own are
    // outstanding, parking briefly only when there is nothing to steal.
    loop {
        if *scope.state.remaining.lock().unwrap() == 0 {
            break;
        }
        if let Some(job) = pool.pop_any() {
            job();
            continue;
        }
        let left = scope.state.remaining.lock().unwrap();
        if *left > 0 {
            let _ = scope.state.done.wait_timeout(left, HELP_PARK).unwrap();
        }
    }

    let task_panic = scope.state.panic.lock().unwrap().take();
    match (body, task_panic) {
        // A task panic wins: it is the root cause the caller's
        // `catch_unwind` degradation path wants to see.
        (_, Some(payload)) => panic::resume_unwind(payload),
        (Err(payload), None) => panic::resume_unwind(payload),
        (Ok(r), None) => r,
    }
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// Task count for `items` work items: never more than the pool width,
/// never so many that a task holds fewer than the sequential cutoff.
fn worker_count(items: usize) -> usize {
    current_num_threads()
        .min(items.div_ceil(SEQUENTIAL_CUTOFF))
        .max(1)
}

/// Runs `f` on `threads` contiguous index chunks of `0..len` via the
/// pool, returning the per-chunk outputs in chunk order.
fn run_chunked<U: Send>(
    len: usize,
    threads: usize,
    f: impl Fn(Range<usize>) -> Vec<U> + Sync,
) -> Vec<Vec<U>> {
    if threads <= 1 || len == 0 {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let mut slots: Vec<Option<Vec<U>>> = (0..threads).map(|_| None).collect();
    scope(|s| {
        for (t, slot) in slots.iter_mut().enumerate() {
            let f = &f;
            s.spawn(move || {
                let lo = t * chunk;
                let hi = (lo + chunk).min(len);
                *slot = Some(f(lo..hi));
            });
        }
    });
    slots.into_iter().map(Option::unwrap_or_default).collect()
}

/// The common import surface (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A finite, indexable source of items that can be mapped in parallel.
///
/// This collapses rayon's producer/consumer machinery into the one shape
/// the shim needs: random access by index.
pub trait ParallelSource: Sync + Sized {
    /// Item produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// `true` if there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at `i` (`i < self.len()`).
    fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator: a source plus a composed per-item transform.
pub struct ParIter<S, F> {
    source: S,
    transform: F,
}

/// Conversion into a parallel iterator by reference (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Conversion into a parallel iterator by value (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consuming parallel iterator over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Source over a borrowed slice.
pub struct SliceSource<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.0[i]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource(self),
            transform: |x| x,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParallelSource for Range<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }

            fn get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<Range<$t>, fn($t) -> $t>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter { source: self, transform: |x| x }
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// The operations available on a parallel iterator (subset of the real
/// trait; every adapter fuses into the terminal `collect`-style drive).
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Applies `op` to each item, yielding a new parallel iterator.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, op: F) -> Map<Self, F>;

    /// Applies `op`, keeping only `Some` results.
    fn filter_map<U: Send, F: Fn(Self::Item) -> Option<U> + Sync>(
        self,
        op: F,
    ) -> FilterMap<Self, F>;

    /// Applies `op` to each item with a mutable per-worker state created
    /// by `init` — real rayon initializes once per split, this shim once
    /// per contiguous chunk (one per worker), which preserves the
    /// property callers rely on: state is never shared across threads.
    fn map_init<T, V, I, G>(self, init: I, op: G) -> MapInit<Self, I, G>
    where
        T: Send,
        V: Send,
        I: Fn() -> T + Sync,
        G: Fn(&mut T, Self::Item) -> V + Sync,
    {
        MapInit {
            inner: self,
            init,
            op,
        }
    }

    /// Drives the iterator, materializing all items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Collects into a container (only `Vec<Item>` and containers with
    /// `FromIterator<Item>` are supported).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `op` on every item. The upstream adapter chain (where the
    /// expensive work lives) runs on the worker threads; `op` itself runs
    /// on the calling thread over the driven results.
    fn for_each<F: Fn(Self::Item)>(self, op: F) {
        for item in self.drive() {
            op(item);
        }
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Item count.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// A `map` adapter (exists so adapter chains type-check like real rayon).
pub struct Map<I, F> {
    inner: I,
    op: F,
}

/// A `filter_map` adapter.
pub struct FilterMap<I, F> {
    inner: I,
    op: F,
}

/// A `map_init` adapter: per-worker mutable state threaded through `op`.
pub struct MapInit<It, I, G> {
    inner: It,
    init: I,
    op: G,
}

impl<S, F, U, T, V, I, G> ParallelIterator for MapInit<ParIter<S, F>, I, G>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
    T: Send,
    V: Send,
    I: Fn() -> T + Sync,
    G: Fn(&mut T, U) -> V + Sync,
{
    type Item = V;

    fn map<W: Send, H: Fn(V) -> W + Sync>(self, op: H) -> Map<Self, H> {
        Map { inner: self, op }
    }

    fn filter_map<W: Send, H: Fn(V) -> Option<W> + Sync>(self, op: H) -> FilterMap<Self, H> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<V> {
        let len = self.inner.source.len();
        let threads = worker_count(len);
        let source = &self.inner.source;
        let transform = &self.inner.transform;
        let init = &self.init;
        let op = &self.op;
        run_chunked(len, threads, |range| {
            let mut state = init();
            range
                .map(|i| op(&mut state, transform(source.get(i))))
                .collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<S, F, U> ParallelIterator for ParIter<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
{
    type Item = U;

    fn map<V: Send, G: Fn(U) -> V + Sync>(self, op: G) -> Map<Self, G> {
        Map { inner: self, op }
    }

    fn filter_map<V: Send, G: Fn(U) -> Option<V> + Sync>(self, op: G) -> FilterMap<Self, G> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<U> {
        let len = self.source.len();
        let threads = worker_count(len);
        let source = &self.source;
        let transform = &self.transform;
        run_chunked(len, threads, |range| {
            range.map(|i| transform(source.get(i))).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<S, F, U, G, V> ParallelIterator for Map<ParIter<S, F>, G>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
    G: Fn(U) -> V + Sync,
    V: Send,
{
    type Item = V;

    fn map<W: Send, H: Fn(V) -> W + Sync>(self, op: H) -> Map<Self, H> {
        Map { inner: self, op }
    }

    fn filter_map<W: Send, H: Fn(V) -> Option<W> + Sync>(self, op: H) -> FilterMap<Self, H> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<V> {
        let len = self.inner.source.len();
        let threads = worker_count(len);
        let source = &self.inner.source;
        let first = &self.inner.transform;
        let second = &self.op;
        run_chunked(len, threads, |range| {
            range.map(|i| second(first(source.get(i)))).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<S, F, U, G, V> ParallelIterator for FilterMap<ParIter<S, F>, G>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
    G: Fn(U) -> Option<V> + Sync,
    V: Send,
{
    type Item = V;

    fn map<W: Send, H: Fn(V) -> W + Sync>(self, op: H) -> Map<Self, H> {
        Map { inner: self, op }
    }

    fn filter_map<W: Send, H: Fn(V) -> Option<W> + Sync>(self, op: H) -> FilterMap<Self, H> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<V> {
        let len = self.inner.source.len();
        let threads = worker_count(len);
        let source = &self.inner.source;
        let first = &self.inner.transform;
        let second = &self.op;
        run_chunked(len, threads, |range| {
            range.filter_map(|i| second(first(source.get(i)))).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn slice_par_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0usize..5_000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[4_999], 4_999 * 4_999);
        let total: u64 = (0u64..1_000).into_par_iter().sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn filter_map_drops_none() {
        let xs: Vec<u32> = (0..2_000).collect();
        let evens: Vec<u32> = xs
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 1_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    #[test]
    fn map_init_threads_per_worker_state_in_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        // Each worker chunk gets its own counter; items stay in order and
        // every item sees a state (the counter strictly increases within
        // a chunk, so the per-item value is chunk-local, never shared).
        let out: Vec<(u64, u64)> = xs
            .par_iter()
            .map_init(
                || 0u64,
                |local, &x| {
                    *local += 1;
                    (x, *local)
                },
            )
            .collect();
        assert_eq!(out.len(), xs.len());
        assert!(out.iter().enumerate().all(|(i, &(x, _))| x == i as u64));
        // Fresh state per chunk: the local counter never exceeds the
        // total length and restarts at 1 on each chunk boundary.
        assert!(out.iter().all(|&(_, c)| c >= 1 && c <= xs.len() as u64));
        assert_eq!(out[0].1, 1);
        // Result collection works through map_init like rayon's.
        let ok: Result<Vec<u64>, ()> = xs.par_iter().map_init(|| (), |(), &x| Ok(x)).collect();
        assert_eq!(ok.unwrap().len(), xs.len());
    }

    #[test]
    fn for_each_and_small_inputs_run_inline() {
        let hits = AtomicUsize::new(0);
        let xs: Vec<u8> = vec![1, 2, 3];
        xs.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let empty: Vec<u8> = vec![];
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one: Vec<u8> = vec![7];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn scope_runs_borrowed_tasks_to_completion() {
        let mut slots = vec![0u32; 100];
        scope(|s| {
            for (i, slot) in slots.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u32 + 1);
            }
        });
        assert!(slots.iter().enumerate().all(|(i, &v)| v == i as u32 + 1));
    }

    #[test]
    fn scope_with_zero_and_one_task() {
        // Zero spawns: scope is a no-op that still returns the body value.
        let r = scope(|_| 42);
        assert_eq!(r, 42);
        // One spawn.
        let flag = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|| {
                flag.fetch_add(1, Ordering::SeqCst);
            })
        });
        assert_eq!(flag.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn work_distributes_across_pool_workers() {
        // A private 3-worker pool: every queued task must run on one of
        // its workers (or the helping caller), and all must complete.
        let pool = Pool::new(3);
        let ids = Mutex::new(HashSet::new());
        let done = AtomicUsize::new(0);
        scope_on(&pool, |s| {
            for _ in 0..64 {
                s.spawn(|| {
                    // Enough work to keep several workers busy at once.
                    std::thread::sleep(Duration::from_millis(2));
                    ids.lock().unwrap().insert(std::thread::current().id());
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(done.load(Ordering::SeqCst), 64);
        let ids = ids.lock().unwrap();
        assert!(
            ids.len() >= 2,
            "64 sleepy tasks on a 3-worker pool should land on >1 thread, got {}",
            ids.len()
        );
    }

    #[test]
    fn panic_propagates_with_original_payload() {
        let pool = Pool::new(2);
        let survivors = AtomicUsize::new(0);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            scope_on(&pool, |s| {
                s.spawn(|| panic!("injected fault 17"));
                for _ in 0..8 {
                    s.spawn(|| {
                        survivors.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        let payload = caught.expect_err("scope must re-raise the task panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(
            msg.contains("injected fault 17"),
            "original payload preserved, got {msg:?}"
        );
        // Sibling tasks were not abandoned: the scope settled them all
        // before re-raising.
        assert_eq!(survivors.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        // Single-worker pool: inner scopes can only make progress because
        // blocked outer tasks help drain the queue.
        let pool = Pool::new(1);
        let total = AtomicUsize::new(0);
        scope_on(&pool, |outer| {
            for _ in 0..4 {
                outer.spawn(|| {
                    scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|| {
                                total.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
