//! Offline shim for the [`rayon`](https://crates.io/crates/rayon) crate.
//!
//! Implements the data-parallel subset this workspace uses: `par_iter()`
//! over slices and `into_par_iter()` over `Range<usize>` / `Range<u32>`,
//! with `map` / `filter_map` / `for_each` / `collect` / `sum`. Instead of
//! rayon's work-stealing pool, inputs are split into one contiguous chunk
//! per available core and mapped on `std::thread::scope` threads; results
//! are concatenated in order, so `collect::<Vec<_>>()` is
//! order-preserving exactly like the real crate. Inputs smaller than a
//! small cutoff run inline to avoid thread-spawn overhead.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Below this many items the "parallel" iterators run inline: spawning
/// threads costs more than the work.
const SEQUENTIAL_CUTOFF: usize = 512;

fn worker_count(items: usize) -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    cores.min(items.div_ceil(SEQUENTIAL_CUTOFF)).max(1)
}

/// Runs `f` on `threads` contiguous index chunks of `0..len`, returning the
/// per-chunk outputs in chunk order.
fn run_chunked<U: Send>(
    len: usize,
    threads: usize,
    f: impl Fn(Range<usize>) -> Vec<U> + Sync,
) -> Vec<Vec<U>> {
    if threads <= 1 || len == 0 {
        return vec![f(0..len)];
    }
    let chunk = len.div_ceil(threads);
    let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = (lo + chunk).min(len);
                let f = &f;
                scope.spawn(move || f(lo..hi))
            })
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon-shim worker panicked"));
        }
    });
    out
}

/// The common import surface (`use rayon::prelude::*`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A finite, indexable source of items that can be mapped in parallel.
///
/// This collapses rayon's producer/consumer machinery into the one shape
/// the shim needs: random access by index.
pub trait ParallelSource: Sync + Sized {
    /// Item produced per index.
    type Item: Send;

    /// Number of items.
    fn len(&self) -> usize;

    /// `true` if there are no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The item at `i` (`i < self.len()`).
    fn get(&self, i: usize) -> Self::Item;
}

/// A parallel iterator: a source plus a composed per-item transform.
pub struct ParIter<S, F> {
    source: S,
    transform: F,
}

/// Conversion into a parallel iterator by reference (`slice.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Borrowing parallel iterator over `self`.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Conversion into a parallel iterator by value (`(0..n).into_par_iter()`).
pub trait IntoParallelIterator {
    /// Item type of the resulting iterator.
    type Item: Send;
    /// Resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;

    /// Consuming parallel iterator over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

/// Source over a borrowed slice.
pub struct SliceSource<'a, T>(&'a [T]);

impl<'a, T: Sync> ParallelSource for SliceSource<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.0.len()
    }

    fn get(&self, i: usize) -> &'a T {
        &self.0[i]
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        ParIter {
            source: SliceSource(self),
            transform: |x| x,
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<SliceSource<'a, T>, fn(&'a T) -> &'a T>;

    fn par_iter(&'a self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

macro_rules! impl_range_source {
    ($($t:ty),*) => {$(
        impl ParallelSource for Range<$t> {
            type Item = $t;

            fn len(&self) -> usize {
                (self.end.saturating_sub(self.start)) as usize
            }

            fn get(&self, i: usize) -> $t {
                self.start + i as $t
            }
        }

        impl IntoParallelIterator for Range<$t> {
            type Item = $t;
            type Iter = ParIter<Range<$t>, fn($t) -> $t>;

            fn into_par_iter(self) -> Self::Iter {
                ParIter { source: self, transform: |x| x }
            }
        }
    )*};
}

impl_range_source!(u32, u64, usize);

/// The operations available on a parallel iterator (subset of the real
/// trait; every adapter fuses into the terminal `collect`-style drive).
pub trait ParallelIterator: Sized {
    /// Item type.
    type Item: Send;

    /// Applies `op` to each item, yielding a new parallel iterator.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync>(self, op: F) -> Map<Self, F>;

    /// Applies `op`, keeping only `Some` results.
    fn filter_map<U: Send, F: Fn(Self::Item) -> Option<U> + Sync>(
        self,
        op: F,
    ) -> FilterMap<Self, F>;

    /// Drives the iterator, materializing all items in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Collects into a container (only `Vec<Item>` and containers with
    /// `FromIterator<Item>` are supported).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Runs `op` on every item. The upstream adapter chain (where the
    /// expensive work lives) runs on the worker threads; `op` itself runs
    /// on the calling thread over the driven results.
    fn for_each<F: Fn(Self::Item)>(self, op: F) {
        for item in self.drive() {
            op(item);
        }
    }

    /// Sums the items.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }

    /// Item count.
    fn count(self) -> usize {
        self.drive().len()
    }
}

/// A `map` adapter (exists so adapter chains type-check like real rayon).
pub struct Map<I, F> {
    inner: I,
    op: F,
}

/// A `filter_map` adapter.
pub struct FilterMap<I, F> {
    inner: I,
    op: F,
}

impl<S, F, U> ParallelIterator for ParIter<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
{
    type Item = U;

    fn map<V: Send, G: Fn(U) -> V + Sync>(self, op: G) -> Map<Self, G> {
        Map { inner: self, op }
    }

    fn filter_map<V: Send, G: Fn(U) -> Option<V> + Sync>(self, op: G) -> FilterMap<Self, G> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<U> {
        let len = self.source.len();
        let threads = worker_count(len);
        let source = &self.source;
        let transform = &self.transform;
        run_chunked(len, threads, |range| {
            range.map(|i| transform(source.get(i))).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<S, F, U, G, V> ParallelIterator for Map<ParIter<S, F>, G>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
    G: Fn(U) -> V + Sync,
    V: Send,
{
    type Item = V;

    fn map<W: Send, H: Fn(V) -> W + Sync>(self, op: H) -> Map<Self, H> {
        Map { inner: self, op }
    }

    fn filter_map<W: Send, H: Fn(V) -> Option<W> + Sync>(self, op: H) -> FilterMap<Self, H> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<V> {
        let len = self.inner.source.len();
        let threads = worker_count(len);
        let source = &self.inner.source;
        let first = &self.inner.transform;
        let second = &self.op;
        run_chunked(len, threads, |range| {
            range.map(|i| second(first(source.get(i)))).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

impl<S, F, U, G, V> ParallelIterator for FilterMap<ParIter<S, F>, G>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Sync,
    U: Send,
    G: Fn(U) -> Option<V> + Sync,
    V: Send,
{
    type Item = V;

    fn map<W: Send, H: Fn(V) -> W + Sync>(self, op: H) -> Map<Self, H> {
        Map { inner: self, op }
    }

    fn filter_map<W: Send, H: Fn(V) -> Option<W> + Sync>(self, op: H) -> FilterMap<Self, H> {
        FilterMap { inner: self, op }
    }

    fn drive(self) -> Vec<V> {
        let len = self.inner.source.len();
        let threads = worker_count(len);
        let source = &self.inner.source;
        let first = &self.inner.transform;
        let second = &self.op;
        run_chunked(len, threads, |range| {
            range.filter_map(|i| second(first(source.get(i)))).collect()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn slice_par_map_collect_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), 10_000);
        assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
    }

    #[test]
    fn range_into_par_iter() {
        let squares: Vec<usize> = (0usize..5_000).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[4_999], 4_999 * 4_999);
        let total: u64 = (0u64..1_000).into_par_iter().sum();
        assert_eq!(total, 499_500);
    }

    #[test]
    fn filter_map_drops_none() {
        let xs: Vec<u32> = (0..2_000).collect();
        let evens: Vec<u32> = xs
            .par_iter()
            .filter_map(|&x| (x % 2 == 0).then_some(x))
            .collect();
        assert_eq!(evens.len(), 1_000);
        assert!(evens.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    #[test]
    fn for_each_and_small_inputs_run_inline() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits = AtomicUsize::new(0);
        let xs: Vec<u8> = vec![1, 2, 3];
        xs.par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        let empty: Vec<u8> = vec![];
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }
}
