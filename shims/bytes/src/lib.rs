//! Offline shim for the [`bytes`](https://crates.io/crates/bytes) crate.
//!
//! Provides `Bytes` / `BytesMut` plus the `Buf` / `BufMut` traits with the
//! little-endian accessors this workspace's serializer uses. The real
//! crate's zero-copy reference counting is not reproduced — `Bytes` here
//! owns a plain `Vec<u8>` — which only affects clone cost, not behavior.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with at least `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor over a byte source (subset of the real trait).
///
/// # Panics
///
/// Like the real crate, the `get_*` / `copy_to_slice` methods panic when
/// fewer than the required bytes remain; callers bounds-check with
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies exactly `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "cannot advance past end of buffer");
        *self = &self[n..];
    }
}

/// Write-side sink for bytes (subset of the real trait).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"HDR");
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let frozen = w.freeze();
        assert_eq!(frozen.len(), 3 + 1 + 4 + 8);

        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 16);
        let mut hdr = [0u8; 3];
        r.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }

    #[test]
    fn slicing_and_vecs() {
        let b: Bytes = vec![1u8, 2, 3].into();
        assert_eq!(&b[1..], &[2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(!b.is_empty());
        let mut v: Vec<u8> = Vec::new();
        v.put_u32_le(5);
        assert_eq!(v.len(), 4);
    }
}
