//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the subset this workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `Bencher::iter_batched`, `BenchmarkId`, `BatchSize`, `black_box`, and
//! the `criterion_group!` / `criterion_main!` macros — with a real
//! measurement loop: warmup, then timed samples, reporting the median and
//! mean nanoseconds per iteration to stdout.
//!
//! Not reproduced from the real crate: statistical outlier analysis,
//! HTML reports, and baseline comparison. For machine-readable output set
//! `CRITERION_JSON=<path>`; each benchmark then appends one JSON line
//! `{"group":..,"bench":..,"median_ns":..,"mean_ns":..,"samples":..}`.
//!
//! Tuning knobs (environment): `CRITERION_WARMUP_MS` (default 300),
//! `CRITERION_MEASURE_MS` (default 1200, the per-benchmark time budget).

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(name: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(name)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// Identifies one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`, as the real crate renders it.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// A bare id with no parameter part.
    pub fn from_name(name: impl Into<String>) -> Self {
        BenchmarkId { id: name.into() }
    }
}

/// How `iter_batched` amortizes setup (the shim times one routine call per
/// sample regardless, which matches `PerIteration`; the variants exist for
/// source compatibility).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (e.g. a cloned index).
    LargeInput,
    /// One setup per timed call.
    PerIteration,
}

/// One benchmark's measurement summary.
#[derive(Clone, Debug)]
struct Summary {
    group: String,
    bench: String,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
}

fn report(summary: &Summary) {
    println!(
        "bench {:<50} median {:>12.1} ns/iter   mean {:>12.1} ns/iter   ({} samples)",
        format!("{}/{}", summary.group, summary.bench),
        summary.median_ns,
        summary.mean_ns,
        summary.samples
    );
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = writeln!(
                f,
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"samples\":{}}}",
                summary.group, summary.bench, summary.median_ns, summary.mean_ns, summary.samples
            );
        }
    }
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Per-sample nanoseconds per iteration, filled by `iter*`.
    recorded: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, running it enough times for stable samples.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let warmup = env_ms("CRITERION_WARMUP_MS", 300);
        let budget = env_ms("CRITERION_MEASURE_MS", 1200);

        // Warmup while estimating the per-iteration cost.
        let start = Instant::now();
        let mut iters: u64 = 0;
        while start.elapsed() < warmup || iters == 0 {
            black_box(routine());
            iters += 1;
        }
        let est_ns = (start.elapsed().as_nanos() as f64 / iters as f64).max(1.0);

        // Aim each sample at ~budget/samples, at least one iteration.
        let per_sample_ns = (budget.as_nanos() as f64 / self.samples as f64).max(est_ns);
        let k = ((per_sample_ns / est_ns).round() as u64).max(1);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..k {
                black_box(routine());
            }
            self.recorded.push(t.elapsed().as_nanos() as f64 / k as f64);
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time.
    /// One setup + one timed call per sample.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Warmup: one untimed round.
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.recorded.push(t.elapsed().as_nanos() as f64);
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark (default 60).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    fn run_one(&mut self, bench: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            recorded: Vec::with_capacity(self.sample_size),
        };
        f(&mut bencher);
        let mut ns = bencher.recorded;
        assert!(
            !ns.is_empty(),
            "benchmark {}/{} recorded no samples (closure never called iter*)",
            self.name,
            bench
        );
        ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = ns[ns.len() / 2];
        let mean = ns.iter().sum::<f64>() / ns.len() as f64;
        let summary = Summary {
            group: self.name.clone(),
            bench,
            median_ns: median,
            mean_ns: mean,
            samples: ns.len(),
        };
        report(&summary);
        self.criterion.completed += 1;
    }

    /// Benchmarks `f` under `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run_one(id.id, |b| f(b, input));
        self
    }

    /// Benchmarks `f` under a bare name.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run_one(name.into(), f);
        self
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {
    completed: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 60,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name.to_string());
        group.run_one(name.to_string(), f);
        self
    }
}

#[macro_export]
/// Declares a benchmark group function, mirroring the real macro.
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
/// Declares the benchmark binary's `main`, mirroring the real macro.
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_sane() {
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        std::env::set_var("CRITERION_MEASURE_MS", "10");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_unit");
        group.sample_size(5);
        group.bench_function("spin", |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for i in 0..100 {
                    acc = acc.wrapping_add(black_box(i));
                }
                acc
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput)
        });
        group.finish();
        assert_eq!(c.completed, 3);
    }
}
