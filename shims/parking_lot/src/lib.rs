//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate: non-poisoning `RwLock` / `Mutex` wrappers over `std::sync`.
//!
//! Semantics match what this workspace relies on — `read()` / `write()` /
//! `lock()` block and return guards without a `Result`, and a panic while a
//! lock is held does not poison it for later users. Fairness and the
//! micro-contention performance of the real crate are not reproduced;
//! `std::sync` locks are futex-based on Linux and close enough for our
//! read-mostly usage.

#![forbid(unsafe_code)]

use std::sync;

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-access guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock whose guard never reports poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_basics() {
        let lock = RwLock::new(5);
        assert_eq!(*lock.read(), 5);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
        assert_eq!(lock.into_inner(), 6);
    }

    #[test]
    fn no_poisoning_after_panic() {
        let lock = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison attempt");
        })
        .join();
        // The real parking_lot keeps working; so must the shim.
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(String::from("a"));
        m.lock().push('b');
        assert_eq!(m.into_inner(), "ab");
    }

    #[test]
    fn concurrent_readers() {
        let lock = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        let _ = *lock.read();
                    }
                })
            })
            .collect();
        for _ in 0..100 {
            *lock.write() += 1;
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 100);
    }
}
