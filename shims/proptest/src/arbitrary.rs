//! `any::<T>()` — strategies for a type's full value domain.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn covers_the_domain_roughly() {
        let mut rng = crate::test_runner::TestRng::seed_from_u64(9);
        let s = any::<u64>();
        let mut high = 0;
        for _ in 0..100 {
            if s.generate(&mut rng) > u64::MAX / 2 {
                high += 1;
            }
        }
        assert!((20..80).contains(&high), "top half drawn {high}/100 times");
        let b = any::<bool>();
        let trues = (0..100).filter(|_| b.generate(&mut rng)).count();
        assert!((20..80).contains(&trues));
    }
}
