//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::BTreeMap;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors of `element` values with lengths in `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeMap<K, V>` with a target entry count drawn from
/// `size`.
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: Range<usize>,
}

/// Generates maps keyed by `keys` with `values`, sized within `size`.
///
/// Duplicate generated keys collapse, so when the key domain is small the
/// realized size can fall below the drawn target (matching the real
/// crate's behavior of treating `size` as an upper shape bound under
/// collisions).
pub fn btree_map<K: Strategy, V: Strategy>(
    keys: K,
    values: V,
    size: Range<usize>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    assert!(size.start < size.end, "empty btree_map size range");
    BTreeMapStrategy { keys, values, size }
}

impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    type Value = BTreeMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = rng.gen_range(self.size.clone());
        let mut map = BTreeMap::new();
        let mut attempts = 0;
        while map.len() < target && attempts < target * 10 + 20 {
            attempts += 1;
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_lengths_respect_range() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = vec(0u32..100, 2..6);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 100));
        }
    }

    #[test]
    fn btree_map_respects_bounds_and_dedups() {
        let mut rng = TestRng::seed_from_u64(5);
        let s = btree_map(0u32..4, 0u64..10, 0..20);
        for _ in 0..50 {
            let m = s.generate(&mut rng);
            // Only 4 distinct keys exist.
            assert!(m.len() <= 4);
        }
    }
}
