//! Offline shim for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Implements the property-testing subset this workspace uses: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` and multiple
//! `#[test]` functions), the [`Strategy`](strategy::Strategy) trait with
//! `prop_map` / `prop_flat_map` / `boxed`, integer-range / tuple / `any` /
//! [`Just`](strategy::Just) strategies, [`collection::vec`] /
//! [`collection::btree_map`], [`prop_oneof!`], and the
//! `prop_assert!`-family macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports the generated input, the case
//!   number, and the per-case seed (every case is reproducible because the
//!   stream is a pure function of the test name and case index), but the
//!   input is not minimized.
//! * **No persistence files.** There is no `proptest-regressions/`
//!   directory; determinism makes reruns exact instead.
//! * Case count comes from `ProptestConfig::with_cases(n)` (default 256),
//!   overridable globally with the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Strategy combinators and primitive strategies.
pub mod strategy_impls {}

#[macro_export]
/// Declares property tests. See the crate docs for the supported syntax.
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns!(($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); ) => {};
    (
        ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                config,
                concat!(module_path!(), "::", stringify!($name)),
                &strategy,
                |__proptest_values| {
                    let ($($pat,)+) = __proptest_values;
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($config); $($rest)*);
    };
}

#[macro_export]
/// Asserts a condition inside a `proptest!` body, failing the case (with
/// input reporting) rather than panicking directly.
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::string::String::from(concat!("assertion failed: ", stringify!($cond))),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
/// Asserts two expressions are equal inside a `proptest!` body.
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
/// Asserts two expressions differ inside a `proptest!` body.
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
}

#[macro_export]
/// Discards the current case when its precondition does not hold.
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
/// Choice between strategies with a common value type: uniform
/// (`prop_oneof![a, b]`) or weighted (`prop_oneof![3 => a, 1 => b]`),
/// matching upstream's two arm forms.
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
