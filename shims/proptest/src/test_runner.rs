//! The case runner behind the `proptest!` macro.

use crate::strategy::Strategy;
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic per-test RNG (re-exported from the rand shim).
pub type TestRng = rand::rngs::StdRng;

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// An assertion failed: the property is violated.
    Fail(String),
    /// The case was discarded (`prop_assume!`); it does not count.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// Builds a rejection.
    pub fn reject(message: &str) -> Self {
        TestCaseError::Reject(message.to_string())
    }
}

/// Runner configuration (subset of the real struct).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

fn seed_for(test_name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ ((case as u64) << 32 | case as u64)
}

/// Drives `body` over `config.cases` generated inputs, panicking with a
/// reproducible report on the first failure.
pub fn run_cases<S, F>(config: ProptestConfig, test_name: &str, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    use rand::SeedableRng;
    let cases = config.effective_cases();
    let mut rejected = 0u32;
    let max_rejects = cases.saturating_mul(8).max(1024);
    let mut case = 0u32;
    let mut passed = 0u32;
    while passed < cases {
        let seed = seed_for(test_name, case);
        case += 1;
        let mut rng = TestRng::seed_from_u64(seed);
        let value = strategy.generate(&mut rng);
        let described = format!("{value:?}");
        match catch_unwind(AssertUnwindSafe(|| (body)(value))) {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "{test_name}: too many rejected cases ({rejected}); \
                         weaken the prop_assume! conditions"
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(message))) => {
                panic!(
                    "{test_name}: property failed at case {case} (seed {seed:#x}): \
                     {message}\n  input: {described}"
                );
            }
            Err(payload) => {
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                panic!(
                    "{test_name}: case {case} panicked (seed {seed:#x}): \
                     {message}\n  input: {described}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut seen = 0u32;
        run_cases(
            ProptestConfig::with_cases(32),
            "unit::pass",
            &(0u32..10),
            |v| {
                assert!(v < 10);
                seen += 1;
                Ok(())
            },
        );
        assert_eq!(seen, 32);
    }

    #[test]
    fn failing_property_reports_input() {
        let result = std::panic::catch_unwind(|| {
            run_cases(
                ProptestConfig::with_cases(64),
                "unit::fail",
                &(0u32..100),
                |v| {
                    if v >= 50 {
                        Err(TestCaseError::fail(format!("{v} too big")))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let message = *result
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string payload");
        assert!(message.contains("too big"), "{message}");
        assert!(message.contains("input:"), "{message}");
        assert!(message.contains("seed"), "{message}");
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut vals = Vec::new();
            run_cases(
                ProptestConfig::with_cases(16),
                "unit::det",
                &(0u64..1_000_000),
                |v| {
                    vals.push(v);
                    Ok(())
                },
            );
            vals
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn rejections_do_not_count_as_passes() {
        let mut accepted = 0u32;
        run_cases(
            ProptestConfig::with_cases(10),
            "unit::reject",
            &(0u32..100),
            |v| {
                if v % 2 == 1 {
                    return Err(TestCaseError::reject("odd"));
                }
                accepted += 1;
                Ok(())
            },
        );
        assert_eq!(accepted, 10);
    }
}
