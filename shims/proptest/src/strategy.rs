//! The [`Strategy`] trait and the primitive/combinator strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree / shrinking: a strategy is
/// just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values (regenerating until `f` accepts one; gives
    /// up after a bounded number of rejections).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// The [`Strategy::prop_filter`] combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Choice among same-typed strategies (`prop_oneof!`), uniform or
/// weighted like upstream's `W => strategy` arms.
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a uniform union over `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Self::new_weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    /// Builds a union picking each option proportionally to its weight.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty or every weight is zero.
    pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight: u64 = options.iter().map(|&(w, _)| u64::from(w)).sum();
        assert!(total_weight > 0, "prop_oneof! needs a positive weight");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total_weight);
        for (w, option) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return option.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights sum to total_weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0u32..10).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
        let flat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..5, n..n + 1));
        for _ in 0..20 {
            let v = flat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let j = Just(7u8);
        assert_eq!(j.generate(&mut rng), 7);
        let filtered = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        assert!(filtered.generate(&mut rng) % 2 == 0);
    }

    #[test]
    fn union_draws_from_all_options() {
        let mut rng = TestRng::seed_from_u64(2);
        let u = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn weighted_union_respects_weights() {
        let mut rng = TestRng::seed_from_u64(5);
        let u = Union::new_weighted(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let mut counts = [0usize; 3];
        for _ in 0..1000 {
            counts[u.generate(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2], "9:1 weights must skew the draw");
        assert!(counts[2] > 0, "light options still occur");
        // A zero-weight option is never drawn.
        let u = Union::new_weighted(vec![(0, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        for _ in 0..50 {
            assert_eq!(u.generate(&mut rng), 2);
        }
    }

    #[test]
    fn tuples_and_inclusive_ranges() {
        let mut rng = TestRng::seed_from_u64(3);
        let s = (0u8..3, 10u32..=12, 0usize..2);
        for _ in 0..50 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 3 && (10..=12).contains(&b) && c < 2);
        }
    }
}
