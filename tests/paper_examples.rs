//! End-to-end checks of every worked example in the paper, through the
//! public facade.

use csc::graph::fixtures::{figure2, figure2_order, pv};
use csc::graph::RankTable;
use csc::prelude::*;

/// Example 1: there are three shortest cycles of length 6 through `v7`.
#[test]
fn example_1_sccnt_v7() {
    let g = figure2();
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    let c = index.query(pv(7)).unwrap();
    assert_eq!((c.length, c.count), (6, 3));
}

/// Example 2: `SPCnt(v10, v8) = 3` at distance 4 via hubs `{v1, v7}`.
#[test]
fn example_2_spcnt_v10_v8() {
    let g = figure2();
    let ranks = RankTable::from_order(&figure2_order());
    let hp = HpSpcIndex::build_with_ranks(&g, ranks).unwrap();
    let dc = hp.sp_count(pv(10), pv(8)).unwrap();
    assert_eq!((dc.dist, dc.count), (4, 3));
}

/// Example 3: evaluating `SCCnt(v7)` through the in-neighbors `{v4,v5,v6}`.
#[test]
fn example_3_baseline_neighbor_decomposition() {
    let g = figure2();
    let ranks = RankTable::from_order(&figure2_order());
    let hp = HpSpcIndex::build_with_ranks(&g, ranks).unwrap();
    // The three neighbor probes of Section III-A.
    assert_eq!(
        hp.sp_count(pv(7), pv(4)).map(|d| (d.dist, d.count)),
        Some((5, 2))
    );
    assert_eq!(
        hp.sp_count(pv(7), pv(5)).map(|d| (d.dist, d.count)),
        Some((5, 1))
    );
    assert_eq!(
        hp.sp_count(pv(7), pv(6)).map(|d| (d.dist, d.count)),
        Some((6, 1))
    );
    // Their aggregation (Equations (3)-(4)).
    let c = csc::labeling::scc_baseline::scc_count(&hp, &g, pv(7)).unwrap();
    assert_eq!((c.length, c.count), (6, 3));
}

/// Example 4: under the degree order, `(v4, 2, 1)` in `Lout(v10)` is
/// non-canonical — only one of the two shortest `v10 ~> v4` paths avoids
/// the higher-ranked `v1`.
#[test]
fn example_4_non_canonical_label() {
    let g = figure2();
    let ranks = RankTable::from_order(&figure2_order());
    let hp = HpSpcIndex::build_with_ranks(&g, ranks.clone()).unwrap();
    let v4_rank = ranks.rank(pv(4));
    let entry = hp
        .labels()
        .out_of(pv(10))
        .iter()
        .find(|e| e.hub_rank() == v4_rank)
        .copied()
        .expect("v4 is a hub of Lout(v10)");
    assert_eq!((entry.dist(), entry.count()), (2, 1));
    // Ground truth: there really are two shortest v10 ~> v4 paths.
    assert_eq!(
        csc::graph::traversal::sp_count_pair(&g, pv(10), pv(4)),
        Some((2, 2))
    );
}

/// Example 5/6 and Table III: the bipartite labels of `v7`'s couple, and
/// the final query `SCCnt(v7) = (11 + 1) / 2 = 6` with count `2*1 + 1*1`.
#[test]
fn example_6_bipartite_query_decomposition() {
    use csc::graph::bipartite::{in_vertex, out_vertex};
    let g = figure2();
    let config = CscConfig::default();
    let index = CscIndex::build(&g, config).unwrap();
    let dc = index.query_raw(pv(7)).unwrap();
    assert_eq!((dc.dist, dc.count), (11, 3));

    // Table III, decoded back to paper vertex names.
    let ranks = index.ranks();
    let v7i = in_vertex(pv(7));
    let v7o = out_vertex(pv(7));
    let v1i = in_vertex(pv(1));
    let lin: Vec<(u32, u32, u64)> = index
        .labels()
        .in_of(v7i)
        .iter()
        .map(|e| (e.hub_rank(), e.dist(), e.count()))
        .collect();
    assert_eq!(
        lin,
        vec![(ranks.rank(v1i), 4, 2), (ranks.rank(v7i), 0, 1)],
        "Lin(v7_i) per Table III"
    );
    let lout: Vec<(u32, u32, u64)> = index
        .labels()
        .out_of(v7o)
        .iter()
        .map(|e| (e.hub_rank(), e.dist(), e.count()))
        .collect();
    assert_eq!(
        lout,
        vec![
            (ranks.rank(v1i), 7, 1),
            (ranks.rank(v7i), 11, 1),
            (ranks.rank(v7o), 0, 1)
        ],
        "Lout(v7_o) per Table III"
    );
}

/// Section III-A's motivating failure: naive `SPCnt(v, v)` is the empty
/// path, which is why the bipartite conversion exists.
#[test]
fn self_spcnt_degenerates_as_the_paper_warns() {
    let g = figure2();
    let hp = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
    let dc = hp.sp_count(pv(1), pv(1)).unwrap();
    assert_eq!(
        (dc.dist, dc.count),
        (0, 1),
        "self query finds the empty path"
    );
    // ... while the CSC index answers the real cycle query.
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    let c = index.query(pv(1)).unwrap();
    assert_eq!(c.length, 6, "v1 lies on the length-6 cycles");
}

/// All three algorithms agree on every vertex of Figure 2.
#[test]
fn all_algorithms_agree_on_figure2() {
    let g = figure2();
    let hp = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    let mut bfs = BfsCycleEngine::new(g.vertex_count());
    for v in g.vertices() {
        let a = bfs.query(&g, v).map(|c| (c.length, c.count));
        let b = csc::labeling::scc_baseline::scc_count(&hp, &g, v).map(|c| (c.length, c.count));
        let c = index.query(v).map(|c| (c.length, c.count));
        assert_eq!(a, b, "BFS vs HP-SPC at {v}");
        assert_eq!(b, c, "HP-SPC vs CSC at {v}");
    }
}
