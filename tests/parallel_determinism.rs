//! Determinism contract of the parallel write & build plane: with
//! `deterministic: true` (the default), the wave-parallel paths commit in
//! hub-rank order with validated prunes, so the label store an index ends
//! up with is *byte-identical* — via the `to_bytes` checkpoint format —
//! whatever worker width produced it. That holds for fresh builds, for
//! churned indexes (batched inserts and deletions), and for full
//! rejuvenation traces. The parallelism knobs themselves are a
//! non-semantic runtime field, so they are normalized before comparing.
//!
//! The relaxed mode (`deterministic: false`) trades that reproducibility
//! for fewer validation scans on append-only builds; its weaker contract —
//! query-exactness, not byte-identity — is pinned here too.

use csc::graph::generators;
use csc::graph::traversal::shortest_cycle_oracle;
use csc::prelude::*;
use proptest::prelude::*;

/// Widths compared against the width-1 serial reference.
const PARALLEL_WIDTHS: [u32; 2] = [2, 4];

/// Checkpoint bytes with the (non-semantic) parallelism knobs normalized,
/// so indexes that differ only in worker width serialize identically.
fn canonical_bytes(index: &CscIndex) -> Vec<u8> {
    let mut index = index.clone();
    index.set_parallelism(ParallelismConfig::default());
    index.to_bytes().unwrap().to_vec()
}

/// A deterministic churn trace: windowed removals of every third edge
/// followed by seeded reinsertions and a few fresh edges.
fn churn_trace(g: &DiGraph, seed: u64) -> Vec<GraphUpdate> {
    let edges = g.edge_vec();
    let mut updates: Vec<GraphUpdate> = edges
        .iter()
        .step_by(3)
        .map(|&(a, b)| GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)))
        .collect();
    updates.extend(
        edges
            .iter()
            .step_by(3)
            .take(updates.len() / 2)
            .map(|&(a, b)| GraphUpdate::InsertEdge(VertexId(a), VertexId(b))),
    );
    let n = g.vertex_count() as u64;
    let mut state = seed | 1;
    for _ in 0..8 {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let a = VertexId((state % n) as u32);
        let b = VertexId(((state >> 23) % n) as u32);
        if a != b {
            updates.push(GraphUpdate::InsertEdge(a, b));
        }
    }
    updates
}

#[test]
fn fresh_builds_are_byte_identical_across_widths() {
    let graphs = [
        generators::gnm(30, 120, 7),
        generators::preferential_attachment(24, 3, 0.4, 11),
        generators::layered_cycle(&[3usize; 9]),
    ];
    for (i, g) in graphs.iter().enumerate() {
        let reference =
            canonical_bytes(&CscIndex::build(g, CscConfig::default().with_threads(1)).unwrap());
        for &w in &PARALLEL_WIDTHS {
            let parallel =
                canonical_bytes(&CscIndex::build(g, CscConfig::default().with_threads(w)).unwrap());
            assert_eq!(
                parallel, reference,
                "graph {i}: build at width {w} diverges from serial bytes"
            );
        }
    }
}

#[test]
fn churned_indexes_are_byte_identical_across_widths() {
    for seed in [3u64, 17, 29] {
        let g = generators::gnm(22, 66, seed);
        let trace = churn_trace(&g, seed);
        let run = |threads: u32| {
            let mut idx = CscIndex::build(&g, CscConfig::default().with_threads(threads)).unwrap();
            for window in trace.chunks(5) {
                idx.apply_batch(window).unwrap();
            }
            canonical_bytes(&idx)
        };
        let reference = run(1);
        for &w in &PARALLEL_WIDTHS {
            assert_eq!(
                run(w),
                reference,
                "seed {seed}: churn at width {w} diverges from serial bytes"
            );
        }
    }
}

#[test]
fn rejuvenation_traces_are_byte_identical_across_widths() {
    for seed in [5u64, 13] {
        let g = generators::gnm(18, 54, seed);
        let trace = churn_trace(&g, seed);
        let run = |threads: u32| {
            let mut engine = MaintenanceEngine::new(
                CscIndex::build(&g, CscConfig::default().with_threads(threads)).unwrap(),
            );
            engine.apply_batch(&trace).unwrap();
            engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
            // Interleave a mid-rebuild write so the replay queue is part of
            // the trace, then drive the incremental rebuild to completion.
            engine.step(3).unwrap();
            let (a, b) = engine.index().original_graph().edge_vec()[0];
            engine.remove_edge(VertexId(a), VertexId(b)).unwrap();
            engine.insert_edge(VertexId(a), VertexId(b)).unwrap();
            while engine.step(3).unwrap() != MaintenanceStatus::Serving {}
            canonical_bytes(engine.index())
        };
        let reference = run(1);
        for &w in &PARALLEL_WIDTHS {
            assert_eq!(
                run(w),
                reference,
                "seed {seed}: rejuvenation at width {w} diverges from serial bytes"
            );
        }
    }
}

#[test]
fn relaxed_mode_is_query_exact_even_when_bytes_may_drift() {
    // `deterministic: false` skips the validated commit on append-only
    // builds: extra (strictly covered) entries may survive, so the bytes
    // are not pinned — but every query must still match the oracle.
    let g = generators::gnm(26, 104, 41);
    for &w in &PARALLEL_WIDTHS {
        let config = CscConfig::default()
            .with_threads(w)
            .with_deterministic(false);
        let idx = CscIndex::build(&g, config).unwrap();
        for v in g.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "relaxed build at width {w}: SCCnt({v})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Coverage sampling fans its BFS trees out over the worker pool, but
    /// the greedy consumes them in sample order: for a fixed seed the
    /// entire index — ranks, labels, checkpoint bytes — is identical at
    /// every width, on arbitrary graphs.
    #[test]
    fn coverage_sampled_builds_are_byte_identical_across_widths(
        n in 10usize..30,
        seed in any::<u64>(),
    ) {
        let g = generators::gnm(n, n * 3, seed);
        let config = |w: u32| {
            CscConfig::default()
                .with_threads(w)
                .with_order(OrderingStrategy::coverage(seed))
        };
        let reference = canonical_bytes(&CscIndex::build(&g, config(1)).unwrap());
        for &w in &PARALLEL_WIDTHS {
            let parallel = canonical_bytes(&CscIndex::build(&g, config(w)).unwrap());
            prop_assert_eq!(
                &parallel,
                &reference,
                "coverage build at width {} diverges from serial bytes (seed {})",
                w,
                seed
            );
        }
    }
}

#[test]
fn checkpoint_roundtrip_preserves_parallel_built_labels() {
    // A checkpoint written by a parallel build must reload into an index
    // that re-serializes to the same bytes and answers identically.
    let g = generators::gnm(20, 80, 19);
    let idx = CscIndex::build(&g, CscConfig::default().with_threads(4)).unwrap();
    let bytes = idx.to_bytes().unwrap();
    let back = CscIndex::from_bytes(&bytes).unwrap();
    assert_eq!(back.config().parallelism, idx.config().parallelism);
    assert_eq!(back.to_bytes().unwrap(), bytes);
    for v in g.vertices() {
        assert_eq!(back.query(v), idx.query(v), "SCCnt({v})");
    }
}
