//! Property-based validation of the maintenance plane: a churned index
//! that rejuvenates — with further updates landing *mid-rebuild* in the
//! write-ahead replay queue — must answer every `dist_count`, `SCCnt`,
//! and `girth` query identically to a `CscIndex::build` from scratch on
//! the final graph. Both the raw `MaintenanceEngine` state machine and
//! the `ConcurrentIndex` facade (snapshot publication included) are
//! exercised.

use csc::graph::generators;
use csc::graph::traversal::shortest_cycle_oracle;
use csc::prelude::*;
use proptest::prelude::*;

/// A raw scripted update, resolved against the evolving graph (same
/// scheme as `batch_equivalence`): seeds stay meaningful whatever the
/// generated topology is.
#[derive(Clone, Debug)]
enum RawOp {
    Insert(u64),
    Remove(u64),
    Flap(u64),
    Grow,
}

fn arb_script(len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(RawOp::Insert),
            any::<u64>().prop_map(RawOp::Remove),
            any::<u64>().prop_map(RawOp::Flap),
            Just(RawOp::Grow),
        ],
        1..len,
    )
}

/// Resolves a script into concrete updates against a simulated graph.
fn resolve(g: &DiGraph, script: &[RawOp]) -> Vec<GraphUpdate> {
    let mut sim = g.clone();
    let mut updates = Vec::new();
    for op in script {
        match *op {
            RawOp::Insert(seed) => {
                let n = sim.vertex_count() as u64;
                let a = VertexId((seed % n) as u32);
                let b = VertexId(((seed >> 17) % n) as u32);
                updates.push(GraphUpdate::InsertEdge(a, b));
                if a != b && !sim.has_edge(a, b) {
                    sim.try_add_edge(a, b).unwrap();
                }
            }
            RawOp::Remove(seed) => {
                if sim.edge_count() == 0 {
                    continue;
                }
                let edges = sim.edge_vec();
                let (u, w) = edges[(seed % edges.len() as u64) as usize];
                updates.push(GraphUpdate::RemoveEdge(VertexId(u), VertexId(w)));
                sim.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            }
            RawOp::Flap(seed) => {
                let n = sim.vertex_count() as u64;
                let a = VertexId((seed % n) as u32);
                let b = VertexId(((seed >> 31) % n) as u32);
                if a == b {
                    continue;
                }
                if sim.has_edge(a, b) {
                    updates.push(GraphUpdate::RemoveEdge(a, b));
                    updates.push(GraphUpdate::InsertEdge(a, b));
                } else {
                    updates.push(GraphUpdate::InsertEdge(a, b));
                    updates.push(GraphUpdate::RemoveEdge(a, b));
                }
            }
            RawOp::Grow => {
                sim.add_vertex();
                updates.push(GraphUpdate::AddVertex);
            }
        }
    }
    updates
}

/// Every query surface must agree with a from-scratch build on the same
/// final graph: per-vertex `SCCnt` (cycle length and count), the raw
/// bipartite `dist_count` behind it, the whole-graph `girth`, and the BFS
/// oracle as the independent referee.
fn assert_equivalent(rejuvenated: &CscIndex, context: &str) {
    let g = rejuvenated.original_graph();
    let fresh = CscIndex::build(&g, *rejuvenated.config()).unwrap();
    for v in g.vertices() {
        assert_eq!(
            rejuvenated.query_raw(v),
            fresh.query_raw(v),
            "{context}: dist_count({v})"
        );
        let got = rejuvenated.query(v);
        assert_eq!(got, fresh.query(v), "{context}: SCCnt({v})");
        assert_eq!(
            got.map(|c| (c.length, c.count)),
            shortest_cycle_oracle(&g, v),
            "{context}: oracle SCCnt({v})"
        );
    }
    assert_eq!(rejuvenated.girth(), fresh.girth(), "{context}: girth");
}

/// Every rejuvenation property runs once per entry of this matrix: width
/// 1 is the serial incremental rebuild, widths 2 and 4 drive the
/// wave-parallel `LabelBuildTask` through the work-stealing pool — with
/// mid-rebuild writes still landing in the replay queue either way.
const THREAD_MATRIX: [u32; 3] = [1, 2, 4];

fn check_rejuvenation_with_midflight_updates(
    g: &DiGraph,
    churn_updates: &[GraphUpdate],
    tail: &[RawOp],
    chunk: usize,
    threads: u32,
) -> Result<(), TestCaseError> {
    let config = CscConfig::default().with_threads(threads);
    let mut engine = MaintenanceEngine::new(CscIndex::build(g, config).unwrap());
    engine.apply_batch(churn_updates).unwrap();

    // Rejuvenate, injecting the tail mid-rebuild: it lands in the
    // write-ahead replay queue, not on the old labels.
    engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
    engine.step(chunk).unwrap();
    let tail_updates = resolve(&engine.index().original_graph(), tail);
    for &u in &tail_updates {
        match u {
            GraphUpdate::InsertEdge(a, b) => {
                prop_assert!(engine.insert_edge(a, b).unwrap().is_none());
            }
            GraphUpdate::RemoveEdge(a, b) => {
                prop_assert!(engine.remove_edge(a, b).unwrap().is_none());
            }
            GraphUpdate::AddVertex => {
                engine.add_vertex().unwrap();
            }
        }
    }
    prop_assert!(engine.is_rebuilding());
    prop_assert_eq!(engine.health().replay_queued, tail_updates.len());
    while engine.step(chunk).unwrap() != MaintenanceStatus::Serving {}

    prop_assert_eq!(engine.health().rejuvenations, 1);
    assert_equivalent(engine.index(), &format!("engine ({threads} threads)"));
    Ok(())
}

fn check_facade_rejuvenation_snapshot(
    g: &DiGraph,
    churn_updates: &[GraphUpdate],
    tail: &[RawOp],
    threads: u32,
) -> Result<(), TestCaseError> {
    let config = CscConfig::default()
        .with_snapshot_every(1)
        .with_threads(threads);
    let shared = ConcurrentIndex::new(CscIndex::build(g, config).unwrap());
    shared.apply_batch(churn_updates).unwrap();

    shared.begin_rejuvenation().unwrap();
    shared.maintain(1).unwrap();
    let tail_updates = resolve(&shared.with_read(|idx| idx.original_graph()), tail);
    // Mid-rebuild writes go through the public facade paths; each one
    // also cooperatively advances the rebuild.
    for &u in &tail_updates {
        shared.apply_batch(&[u]).unwrap();
    }
    while shared.maintain(usize::MAX).unwrap() != MaintenanceStatus::Serving {}

    // The *published snapshot* — what readers actually see after the
    // atomic swap — must match the from-scratch build.
    let snap = shared.snapshot();
    let g_final = shared.with_read(|idx| idx.original_graph());
    let fresh = CscIndex::build(&g_final, config).unwrap();
    for v in g_final.vertices() {
        prop_assert_eq!(
            snap.query_raw(v),
            fresh.query_raw(v),
            "dist_count({}) ({} threads)",
            v,
            threads
        );
        prop_assert_eq!(
            snap.query(v),
            fresh.query(v),
            "SCCnt({}) ({} threads)",
            v,
            threads
        );
    }
    prop_assert_eq!(snap.girth(), fresh.girth(), "girth ({} threads)", threads);
    // No entry-count assertion: updates replayed *after* the rebuild
    // add entries the from-scratch build never stores (answers still
    // match — that is the point of the equivalence above).
    assert_equivalent(&shared.into_inner(), &format!("facade ({threads} threads)"));
    Ok(())
}

/// Order migration: a live index built under the degree order can switch
/// to coverage sampling with `set_order` and have the next rejuvenation
/// re-rank under it — no restart, no downtime. On a bridged-communities
/// topology (whose inter-community hubs a degree order under-ranks) the
/// migrated index must both stay scratch-equivalent and come out
/// *strictly smaller* than the drifted degree-ordered labels it replaces.
#[test]
fn rejuvenation_migrates_degree_index_to_coverage_order() {
    let g = generators::bridged_communities(4, 16, 48, 9);
    for &threads in &THREAD_MATRIX {
        let config = CscConfig::default().with_threads(threads);
        assert_eq!(config.order, OrderingStrategy::Degree, "seed order");
        let mut engine = MaintenanceEngine::new(CscIndex::build(&g, config).unwrap());

        // Churn: flap a spread of existing edges and wire in one fresh
        // vertex, so the rebuild starts from drifted labels.
        let edges = g.edge_vec();
        let mut churn: Vec<GraphUpdate> = Vec::new();
        for &(a, b) in edges.iter().step_by(7) {
            churn.push(GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)));
            churn.push(GraphUpdate::InsertEdge(VertexId(a), VertexId(b)));
        }
        churn.push(GraphUpdate::AddVertex);
        let nv = VertexId(g.vertex_count() as u32);
        churn.push(GraphUpdate::InsertEdge(nv, VertexId(0)));
        churn.push(GraphUpdate::InsertEdge(VertexId(1), nv));
        engine.apply_batch(&churn).unwrap();
        let drifted_entries = engine.index().total_entries();

        engine.set_order(OrderingStrategy::coverage(9)).unwrap();
        assert!(
            matches!(
                engine.index().config().order,
                OrderingStrategy::CoverageSampling { .. }
            ),
            "set_order takes effect immediately in config"
        );
        engine.begin_rejuvenation(RebuildReason::Manual).unwrap();
        while engine.step(16).unwrap() != MaintenanceStatus::Serving {}

        assert_equivalent(
            engine.index(),
            &format!("coverage migration ({threads} threads)"),
        );
        let migrated_entries = engine.index().total_entries();
        assert!(
            migrated_entries < drifted_entries,
            "coverage rejuvenation must shrink the index \
             ({migrated_entries} vs {drifted_entries}, {threads} threads)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rejuvenation_with_midflight_updates_equals_scratch_build(
        n in 8usize..18,
        seed in any::<u64>(),
        churn in arb_script(18),
        tail in arb_script(10),
        chunk in 1usize..9,
    ) {
        let g = generators::gnm(n, n * 2, seed);
        let churn_updates = resolve(&g, &churn);
        for &threads in &THREAD_MATRIX {
            check_rejuvenation_with_midflight_updates(&g, &churn_updates, &tail, chunk, threads)?;
        }
    }

    #[test]
    fn facade_rejuvenation_snapshot_equals_scratch_build(
        n in 8usize..16,
        seed in any::<u64>(),
        churn in arb_script(14),
        tail in arb_script(6),
    ) {
        let g = generators::gnm(n, n * 2, seed);
        let churn_updates = resolve(&g, &churn);
        for &threads in &THREAD_MATRIX {
            check_facade_rejuvenation_snapshot(&g, &churn_updates, &tail, threads)?;
        }
    }
}
