//! Property-based cross-validation: on arbitrary random graphs, the CSC
//! index, the HP-SPC + neighborhood baseline, and the BFS baseline must
//! return identical `SCCnt` answers for every vertex, under any vertex
//! ordering.

use csc::graph::generators;
use csc::graph::traversal::shortest_cycle_oracle;
use csc::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary simple digraph with up to `max_n` vertices.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = DiGraph> {
    (2..max_n, any::<u64>()).prop_map(move |(n, seed)| {
        let cap = (n * (n - 1)).min(max_m);
        let m = (seed as usize) % (cap + 1);
        generators::gnm(n, m, seed)
    })
}

/// Strategy: graphs rich in short cycles (reciprocal preferential
/// attachment), stressing the counting rather than reachability.
fn arb_cyclic_graph() -> impl Strategy<Value = DiGraph> {
    (8usize..40, 1usize..4, any::<u64>())
        .prop_map(|(n, k, seed)| generators::preferential_attachment(n, k, 0.7, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csc_matches_oracle_on_random_graphs(g in arb_graph(24, 140)) {
        let index = CscIndex::build(&g, CscConfig::default()).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(
                index.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "SCCnt({}) diverged", v
            );
        }
    }

    #[test]
    fn all_three_algorithms_agree(g in arb_cyclic_graph()) {
        let hp = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        let index = CscIndex::build(&g, CscConfig::default()).unwrap();
        let mut bfs = BfsCycleEngine::new(g.vertex_count());
        for v in g.vertices() {
            let a = bfs.query(&g, v).map(|c| (c.length, c.count));
            let b = csc::labeling::scc_baseline::scc_count(&hp, &g, v)
                .map(|c| (c.length, c.count));
            let c = index.query(v).map(|c| (c.length, c.count));
            prop_assert_eq!(a, b, "BFS vs HP-SPC at {}", v);
            prop_assert_eq!(b, c, "HP-SPC vs CSC at {}", v);
        }
    }

    #[test]
    fn correctness_is_order_independent(
        g in arb_graph(18, 90),
        seed in any::<u64>(),
    ) {
        // Index size depends on the order; answers must not.
        let orders = [
            OrderingStrategy::Degree,
            OrderingStrategy::DegreeProduct,
            OrderingStrategy::Identity,
            OrderingStrategy::Random(seed),
            OrderingStrategy::coverage(seed),
        ];
        let indexes: Vec<_> = orders
            .iter()
            .map(|&o| CscIndex::build(&g, CscConfig::default().with_order(o)).unwrap())
            .collect();
        for v in g.vertices() {
            let reference = indexes[0].query(v);
            for (idx, order) in indexes.iter().zip(&orders).skip(1) {
                prop_assert_eq!(
                    idx.query(v), reference,
                    "order {:?} diverged at {}", order, v
                );
            }
        }
    }

    #[test]
    fn hpspc_pair_counts_match_bfs(g in arb_graph(20, 120)) {
        let hp = HpSpcIndex::build(&g, OrderingStrategy::Degree).unwrap();
        for s in g.vertices() {
            let truth = csc::graph::traversal::bfs_counts(&g, s, true);
            for t in g.vertices() {
                if s == t { continue; }
                let want = truth[t.index()].0.map(|d| (d, truth[t.index()].1));
                let got = hp.sp_count(s, t).map(|dc| (dc.dist, dc.count));
                prop_assert_eq!(got, want, "SPCnt({}, {})", s, t);
            }
        }
    }

    #[test]
    fn serialization_preserves_answers(g in arb_graph(20, 100)) {
        let index = CscIndex::build(&g, CscConfig::default()).unwrap();
        let bytes = index.to_bytes().unwrap();
        let restored = CscIndex::from_bytes(&bytes).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(restored.query(v), index.query(v), "restored SCCnt({})", v);
        }
    }

    #[test]
    fn reduced_index_answers_match(g in arb_graph(20, 100)) {
        let index = CscIndex::build(&g, CscConfig::default()).unwrap();
        let reduced = csc::index::reduction::ReducedIndex::from_index(&index);
        prop_assert!(reduced.exactly_recoverable(), "static indexes recover");
        for v in g.vertices() {
            prop_assert_eq!(reduced.query(v), index.query(v), "reduced SCCnt({})", v);
        }
        prop_assert!(reduced.total_entries() <= index.total_entries());
    }
}
