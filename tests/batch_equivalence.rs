//! Property-based validation of the batch update engine: `apply_batch` of
//! an arbitrary update sequence — duplicate edges, insert/delete flapping,
//! invalid operations, vertex additions, the lot — must leave an index
//! that answers exactly like applying the same sequence one update at a
//! time (skipping individually-invalid operations), like an index rebuilt
//! from scratch on the final graph, and like the BFS oracle. The
//! publication pipeline is covered too: a `ConcurrentIndex` fed the same
//! batches must serve snapshots that match a full freeze.

use csc::graph::generators;
use csc::graph::traversal::shortest_cycle_oracle;
use csc::prelude::*;
use proptest::prelude::*;

/// A raw scripted update; seeds are resolved against the evolving graph
/// so scripts stay meaningful whatever the generated topology is.
#[derive(Clone, Debug)]
enum RawOp {
    /// Insert an edge derived from the seed — may collide with a present
    /// edge (exercising rejection) or re-insert a removed one.
    Insert(u64),
    /// Remove the seed-chosen edge among those currently present.
    Remove(u64),
    /// Remove an edge that is (almost surely) absent: a rejection case.
    RemoveAbsent(u64),
    /// Re-insert then remove the same edge, or vice versa (cancellation).
    Flap(u64),
    /// Append a vertex and maybe wire it in later via Insert seeds.
    Grow,
}

fn arb_script(len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(RawOp::Insert),
            any::<u64>().prop_map(RawOp::Remove),
            any::<u64>().prop_map(RawOp::RemoveAbsent),
            any::<u64>().prop_map(RawOp::Flap),
            Just(RawOp::Grow),
        ],
        1..len,
    )
}

/// Resolves a script into concrete `GraphUpdate`s against a *simulated*
/// graph state, so the same update slice can be replayed on any index.
fn resolve(g: &DiGraph, script: &[RawOp]) -> Vec<GraphUpdate> {
    let mut sim = g.clone();
    let mut updates = Vec::new();
    for op in script {
        match *op {
            RawOp::Insert(seed) => {
                let n = sim.vertex_count() as u64;
                let a = VertexId((seed % n) as u32);
                let b = VertexId(((seed >> 17) % n) as u32);
                updates.push(GraphUpdate::InsertEdge(a, b));
                if a != b && !sim.has_edge(a, b) {
                    sim.try_add_edge(a, b).unwrap();
                }
            }
            RawOp::Remove(seed) => {
                if sim.edge_count() == 0 {
                    continue;
                }
                let edges = sim.edge_vec();
                let (u, w) = edges[(seed % edges.len() as u64) as usize];
                updates.push(GraphUpdate::RemoveEdge(VertexId(u), VertexId(w)));
                sim.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            }
            RawOp::RemoveAbsent(seed) => {
                let n = sim.vertex_count() as u64;
                let a = VertexId((seed % n) as u32);
                let b = VertexId(((seed >> 23) % (n + 2)) as u32); // may be out of range
                if !sim.has_edge(a, b) {
                    updates.push(GraphUpdate::RemoveEdge(a, b));
                }
            }
            RawOp::Flap(seed) => {
                let n = sim.vertex_count() as u64;
                let a = VertexId((seed % n) as u32);
                let b = VertexId(((seed >> 31) % n) as u32);
                if a == b {
                    continue;
                }
                if sim.has_edge(a, b) {
                    updates.push(GraphUpdate::RemoveEdge(a, b));
                    updates.push(GraphUpdate::InsertEdge(a, b));
                } else {
                    updates.push(GraphUpdate::InsertEdge(a, b));
                    updates.push(GraphUpdate::RemoveEdge(a, b));
                }
            }
            RawOp::Grow => {
                sim.add_vertex();
                updates.push(GraphUpdate::AddVertex);
            }
        }
    }
    updates
}

/// The reference semantics: one update at a time, failures skipped.
/// Returns how many updates were applied.
fn apply_one_by_one(index: &mut CscIndex, updates: &[GraphUpdate]) -> usize {
    let mut applied = 0;
    for u in updates {
        let ok = match *u {
            GraphUpdate::InsertEdge(a, b) => index.insert_edge(a, b).is_ok(),
            GraphUpdate::RemoveEdge(a, b) => index.remove_edge(a, b).is_ok(),
            GraphUpdate::AddVertex => {
                index.add_vertex();
                true
            }
        };
        applied += usize::from(ok);
    }
    applied
}

/// A deletion-heavy script: mostly removals with occasional reinsertions
/// and absent-edge rejections, for the windowed decremental engine.
fn arb_delete_heavy_script(len: usize) -> impl Strategy<Value = Vec<RawOp>> {
    proptest::collection::vec(
        prop_oneof![
            4 => any::<u64>().prop_map(RawOp::Remove),
            1 => any::<u64>().prop_map(RawOp::Insert),
            1 => any::<u64>().prop_map(RawOp::RemoveAbsent),
            1 => any::<u64>().prop_map(RawOp::Flap),
        ],
        1..len,
    )
}

/// Every equivalence property below runs once per entry of this matrix:
/// width 1 is the sequential reference path, widths 2 and 4 drive the
/// wave-parallel repair and build planes through the work-stealing pool.
const THREAD_MATRIX: [u32; 3] = [1, 2, 4];

/// The default config pinned to an explicit parallelism width.
fn cfg_at(threads: u32) -> CscConfig {
    CscConfig::default().with_threads(threads)
}

fn check_batched_equals_one_by_one(
    g: &DiGraph,
    updates: &[GraphUpdate],
    threads: u32,
) -> Result<(), TestCaseError> {
    let base = CscIndex::build(g, cfg_at(threads)).unwrap();

    let mut batched = base.clone();
    let report = batched.apply_batch(updates).unwrap();
    let mut sequential = base;
    let applied = apply_one_by_one(&mut sequential, updates);

    // Accounting: every submitted update is applied, cancelled, or
    // rejected; applied + cancelled is what sequential accepted.
    prop_assert_eq!(
        report.applied_updates() + report.cancelled,
        applied,
        "accepted-op accounting ({} threads)",
        threads
    );
    prop_assert_eq!(
        report.applied_updates() + report.cancelled + report.rejected,
        updates.len(),
        "total accounting ({} threads)",
        threads
    );

    let g_final = sequential.original_graph();
    prop_assert_eq!(&batched.original_graph(), &g_final, "net graphs diverge");
    for v in g_final.vertices() {
        let got = batched.query(v);
        prop_assert_eq!(
            got,
            sequential.query(v),
            "vs sequential at {} ({} threads)",
            v,
            threads
        );
        prop_assert_eq!(
            got.map(|c| (c.length, c.count)),
            shortest_cycle_oracle(&g_final, v),
            "vs oracle at {} ({} threads)",
            v,
            threads
        );
    }
    Ok(())
}

fn check_batched_minimality_equals_one_by_one(
    g: &DiGraph,
    updates: &[GraphUpdate],
    threads: u32,
) -> Result<(), TestCaseError> {
    let config = cfg_at(threads).with_update_strategy(UpdateStrategy::Minimality);
    let base = CscIndex::build(g, config).unwrap();
    let mut batched = base.clone();
    batched.apply_batch(updates).unwrap();
    let mut sequential = base;
    apply_one_by_one(&mut sequential, updates);
    for v in batched.original_graph().vertices() {
        prop_assert_eq!(
            batched.query(v),
            sequential.query(v),
            "at {} ({} threads)",
            v,
            threads
        );
    }
    Ok(())
}

fn check_windowed_replay_equals_single_batch(
    g: &DiGraph,
    updates: &[GraphUpdate],
    window: usize,
    threads: u32,
) -> Result<(), TestCaseError> {
    let base = CscIndex::build(g, cfg_at(threads)).unwrap();
    let mut whole = base.clone();
    whole.apply_batch(updates).unwrap();
    let mut windowed = base;
    for chunk in updates.chunks(window) {
        windowed.apply_batch(chunk).unwrap();
    }
    prop_assert_eq!(&whole.original_graph(), &windowed.original_graph());
    for v in whole.original_graph().vertices() {
        prop_assert_eq!(
            whole.query(v),
            windowed.query(v),
            "at {} ({} threads)",
            v,
            threads
        );
    }
    Ok(())
}

fn check_delete_only_batched(
    g: &DiGraph,
    updates: &[GraphUpdate],
    threads: u32,
) -> Result<(), TestCaseError> {
    let base = CscIndex::build(g, cfg_at(threads)).unwrap();
    let mut batched = base.clone();
    let report = batched.apply_batch(updates).unwrap();
    prop_assert_eq!(report.edges_removed, updates.len());
    let mut sequential = base;
    apply_one_by_one(&mut sequential, updates);

    let g_final = sequential.original_graph();
    prop_assert_eq!(&batched.original_graph(), &g_final);
    for v in g_final.vertices() {
        let got = batched.query(v);
        prop_assert_eq!(
            got,
            sequential.query(v),
            "vs sequential at {} ({} threads)",
            v,
            threads
        );
        prop_assert_eq!(
            got.map(|c| (c.length, c.count)),
            shortest_cycle_oracle(&g_final, v),
            "vs oracle at {} ({} threads)",
            v,
            threads
        );
    }
    Ok(())
}

fn check_delete_then_reinsert_restores(
    g: &DiGraph,
    removals: &[GraphUpdate],
    reinserts: &[GraphUpdate],
    window: usize,
    threads: u32,
) -> Result<(), TestCaseError> {
    let base = CscIndex::build(g, cfg_at(threads)).unwrap();
    let mut idx = base.clone();
    for chunk in removals.chunks(window) {
        idx.apply_batch(chunk).unwrap();
    }
    for chunk in reinserts.chunks(window) {
        idx.apply_batch(chunk).unwrap();
    }
    prop_assert_eq!(&idx.original_graph(), g);
    for v in g.vertices() {
        prop_assert_eq!(
            idx.query(v),
            base.query(v),
            "at {} ({} threads)",
            v,
            threads
        );
    }
    Ok(())
}

fn check_delete_heavy_windowing(
    g: &DiGraph,
    updates: &[GraphUpdate],
    window: usize,
    threads: u32,
) -> Result<(), TestCaseError> {
    let base = CscIndex::build(g, cfg_at(threads)).unwrap();
    let mut whole = base.clone();
    whole.apply_batch(updates).unwrap();
    let mut windowed = base.clone();
    for chunk in updates.chunks(window) {
        windowed.apply_batch(chunk).unwrap();
    }
    let mut sequential = base;
    apply_one_by_one(&mut sequential, updates);
    prop_assert_eq!(&whole.original_graph(), &windowed.original_graph());
    let g_final = sequential.original_graph();
    for v in g_final.vertices() {
        let got = whole.query(v);
        prop_assert_eq!(
            got,
            windowed.query(v),
            "windowed at {} ({} threads)",
            v,
            threads
        );
        prop_assert_eq!(
            got,
            sequential.query(v),
            "sequential at {} ({} threads)",
            v,
            threads
        );
        prop_assert_eq!(
            got.map(|c| (c.length, c.count)),
            shortest_cycle_oracle(&g_final, v),
            "oracle at {} ({} threads)",
            v,
            threads
        );
    }
    Ok(())
}

fn check_concurrent_batches_snapshots(
    g: &DiGraph,
    updates: &[GraphUpdate],
    every: usize,
    threads: u32,
) {
    let config = cfg_at(threads).with_snapshot_every(every);
    let shared = ConcurrentIndex::new(CscIndex::build(g, config).unwrap());
    for chunk in updates.chunks(3) {
        shared.apply_batch(chunk).unwrap();
    }
    shared.refresh();
    let snap = shared.snapshot();
    shared.with_read(|idx| {
        for v in 0..idx.original_vertex_count() as u32 {
            let v = VertexId(v);
            assert_eq!(
                snap.query(v),
                idx.query(v),
                "snapshot at {v} ({threads} threads)"
            );
        }
        assert_eq!(snap.total_entries(), idx.total_entries());
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn batched_equals_one_by_one(
        n in 6usize..18,
        m_seed in any::<u64>(),
        script in arb_script(20),
    ) {
        let m = (m_seed as usize) % (n * 2 + 1);
        let g = generators::gnm(n, m, m_seed);
        let updates = resolve(&g, &script);
        for &threads in &THREAD_MATRIX {
            check_batched_equals_one_by_one(&g, &updates, threads)?;
        }
    }

    #[test]
    fn batched_minimality_equals_one_by_one(
        script in arb_script(12),
        seed in any::<u64>(),
    ) {
        let g = generators::preferential_attachment(12, 2, 0.5, seed);
        let updates = resolve(&g, &script);
        for &threads in &THREAD_MATRIX {
            check_batched_minimality_equals_one_by_one(&g, &updates, threads)?;
        }
    }

    #[test]
    fn windowed_replay_equals_single_batch(
        n in 8usize..16,
        seed in any::<u64>(),
        script in arb_script(24),
        window in 1usize..7,
    ) {
        // Chopping one stream into windows of any size must not change
        // where the index ends up (only what cancels inside a window).
        let g = generators::gnm(n, n * 2, seed);
        let updates = resolve(&g, &script);
        for &threads in &THREAD_MATRIX {
            check_windowed_replay_equals_single_batch(&g, &updates, window, threads)?;
        }
    }

    #[test]
    fn delete_only_batched_equals_sequential_and_oracle(
        n in 8usize..18,
        seed in any::<u64>(),
        take in 2usize..14,
    ) {
        // Dense start so the windowed engine sees real cones; one batch
        // removes a spread-out slice of the edges.
        let g = generators::gnm(n, n * 4, seed);
        let edges = g.edge_vec();
        let updates: Vec<GraphUpdate> = edges
            .iter()
            .step_by((edges.len() / take.min(edges.len()).max(1)).max(1))
            .map(|&(a, b)| GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)))
            .collect();
        prop_assume!(!updates.is_empty());
        for &threads in &THREAD_MATRIX {
            check_delete_only_batched(&g, &updates, threads)?;
        }
    }

    #[test]
    fn delete_then_reinsert_windows_restore_the_index(
        n in 8usize..16,
        seed in any::<u64>(),
        window in 1usize..6,
    ) {
        // A deletion window followed by the mirror insertion window must
        // answer exactly like the untouched graph — the decremental and
        // incremental engines must be true inverses at the query level.
        let g = generators::gnm(n, n * 3, seed);
        let victims: Vec<(u32, u32)> = g.edge_vec().into_iter().step_by(3).collect();
        prop_assume!(!victims.is_empty());
        let removals: Vec<GraphUpdate> = victims
            .iter()
            .map(|&(a, b)| GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)))
            .collect();
        let reinserts: Vec<GraphUpdate> = victims
            .iter()
            .map(|&(a, b)| GraphUpdate::InsertEdge(VertexId(a), VertexId(b)))
            .collect();
        for &threads in &THREAD_MATRIX {
            check_delete_then_reinsert_restores(&g, &removals, &reinserts, window, threads)?;
        }
    }

    #[test]
    fn delete_heavy_windowing_is_invariant(
        n in 8usize..16,
        seed in any::<u64>(),
        script in arb_delete_heavy_script(24),
        window in 1usize..7,
    ) {
        // Chopping a deletion-dominated stream into windows of any size
        // must not change where the index ends up, whichever mix of the
        // surgical per-hub path and the rebuild fallback each window takes.
        let g = generators::gnm(n, n * 3, seed);
        let updates = resolve(&g, &script);
        for &threads in &THREAD_MATRIX {
            check_delete_heavy_windowing(&g, &updates, window, threads)?;
        }
    }

    #[test]
    fn concurrent_batches_publish_exact_snapshots(
        script in arb_script(16),
        seed in any::<u64>(),
        every in 0usize..4,
    ) {
        let g = generators::gnm(10, 24, seed);
        let updates = resolve(&g, &script);
        for &threads in &THREAD_MATRIX {
            check_concurrent_batches_snapshots(&g, &updates, every, threads);
        }
    }
}

#[test]
fn saturated_count_demotion_inside_a_batch() {
    // 2^26 shortest cycles saturate the 24-bit counts, so the merged
    // subtraction pass must refuse and demote to the re-label regime —
    // with *two* deletions in one window, exercising the windowed demotion
    // path. Lengths must match the one-by-one application and the oracle.
    let widths = vec![2usize; 27];
    let g = generators::layered_cycle(&widths);
    let updates = [
        GraphUpdate::RemoveEdge(VertexId(2), VertexId(4)),
        GraphUpdate::RemoveEdge(VertexId(5), VertexId(7)),
    ];
    for &threads in &THREAD_MATRIX {
        let base = CscIndex::build(&g, cfg_at(threads)).unwrap();
        assert!(base.query(VertexId(0)).unwrap().count >= (1 << 24) - 1);
        let mut batched = base.clone();
        batched.apply_batch(&updates).unwrap();
        let mut sequential = base;
        apply_one_by_one(&mut sequential, &updates);
        let g_final = sequential.original_graph();
        for v in g_final.vertices() {
            assert_eq!(
                batched.query(v),
                sequential.query(v),
                "SCCnt({v}) ({threads} threads)"
            );
        }
        let oracle = shortest_cycle_oracle(&g_final, VertexId(0)).unwrap();
        assert_eq!(batched.query(VertexId(0)).unwrap().length, oracle.0);
    }
}

#[test]
fn batched_deletions_take_the_indexed_carrier_path() {
    // `with_inverted(false)` trades the inverted index away; the batch
    // engine must not pay the full-scan fallback for it — it builds the
    // index on demand, keeps it maintained, and never scans.
    let g = generators::gnm(18, 60, 23);
    let updates: Vec<GraphUpdate> = g
        .edge_vec()
        .into_iter()
        .step_by(4)
        .map(|(a, b)| GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)))
        .collect();
    for &threads in &THREAD_MATRIX {
        let config = cfg_at(threads).with_inverted(false);
        let mut idx = CscIndex::build(&g, config).unwrap();
        let report = idx.apply_batch(&updates).unwrap();
        assert_eq!(report.edges_removed, updates.len());
        assert_eq!(
            report.repair.carriers_scanned, 0,
            "the batched deletion path must never scan for carriers"
        );
        // Follow-up deletions keep using (and maintaining) the built index.
        let g_now = idx.original_graph();
        let victim = g_now.edge_vec()[0];
        let report = idx
            .apply_batch(&[GraphUpdate::RemoveEdge(
                VertexId(victim.0),
                VertexId(victim.1),
            )])
            .unwrap();
        assert_eq!(report.repair.carriers_scanned, 0);
        let g_final = idx.original_graph();
        for v in g_final.vertices() {
            assert_eq!(
                idx.query(v).map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g_final, v),
                "SCCnt({v}) ({threads} threads)"
            );
        }
    }
}

#[test]
fn overwhelming_windows_fall_back_to_rebuild_and_stay_exact() {
    // Removing most of a dense graph in one window demotes nearly every
    // hub; the engine must take the from-scratch rebuild fallback and
    // still answer exactly like the one-by-one application.
    let g = generators::gnm(16, 64, 31);
    let updates: Vec<GraphUpdate> = g
        .edge_vec()
        .into_iter()
        .step_by(2)
        .map(|(a, b)| GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)))
        .collect();
    for &threads in &THREAD_MATRIX {
        let base = CscIndex::build(&g, cfg_at(threads)).unwrap();
        let mut batched = base.clone();
        let report = batched.apply_batch(&updates).unwrap();
        assert!(
            report.repair.rebuild_fallbacks > 0,
            "a half-the-graph window must trip the rebuild fallback"
        );
        let mut sequential = base;
        apply_one_by_one(&mut sequential, &updates);
        let g_final = sequential.original_graph();
        for v in g_final.vertices() {
            let got = batched.query(v);
            assert_eq!(
                got,
                sequential.query(v),
                "vs sequential at {v} ({threads} threads)"
            );
            assert_eq!(
                got.map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g_final, v),
                "vs oracle at {v} ({threads} threads)"
            );
        }
    }
}
