//! Soak test for the parallel write & build plane under reader pressure:
//! four reader threads hammer a [`ConcurrentIndex`]'s snapshot pipeline
//! while the writer churns the graph and drives wave-parallel
//! rejuvenations (width 4) through the work-stealing pool. Every pinned
//! snapshot must stay internally consistent, the publication watermark
//! must never run backwards (no lost snapshots), and the live index must
//! pass full structural + semantic verification at the end.
//!
//! `#[ignore]` by default — it is a soak, not a unit check. CI runs it in
//! the thread-matrix job with `cargo test -- --ignored`; locally:
//! `cargo test --test concurrent_soak -- --ignored`.

use csc::graph::generators;
use csc::index::verify::verify_index;
use csc::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

const READERS: usize = 4;
const ROUNDS: usize = 240;
const REJUVENATE_EVERY: usize = 40;

#[test]
#[ignore = "soak test: run with -- --ignored (CI thread-matrix job does)"]
fn readers_survive_churn_and_parallel_rebuilds() {
    let g = generators::gnm(48, 192, 97);
    let config = CscConfig::default().with_threads(4).with_snapshot_every(1);
    let shared = Arc::new(ConcurrentIndex::new(CscIndex::build(&g, config).unwrap()));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut watermark = 0u64;
                let mut grabbed = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = shared.snapshot();
                    // No lost snapshots: publication only moves forward.
                    let applied = snap.updates_applied();
                    assert!(
                        applied >= watermark,
                        "reader {r}: watermark ran backwards ({applied} < {watermark})"
                    );
                    watermark = applied;
                    // A pinned snapshot answers from one frozen arena: the
                    // batch surface and per-vertex queries must agree with
                    // each other no matter what the writer is doing.
                    let all = snap.query_all();
                    assert_eq!(all.len(), snap.original_vertex_count(), "reader {r}");
                    for v in (0..all.len()).step_by(5) {
                        assert_eq!(
                            snap.query(VertexId(v as u32)),
                            all[v],
                            "reader {r}: SCCnt({v}) disagrees inside one snapshot"
                        );
                    }
                    grabbed += 1;
                }
                grabbed
            })
        })
        .collect();

    // Writer: seeded churn windows, with a wave-parallel rejuvenation
    // driven in small cooperative steps every `REJUVENATE_EVERY` rounds —
    // mid-rebuild windows land in the replay queue while the rebuild's
    // label waves run on the worker pool under full reader load.
    let mut s = 0x51C7_u64;
    let mut rng = move |m: u64| {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (s >> 33) % m.max(1)
    };
    for round in 0..ROUNDS {
        let mut window = Vec::new();
        let n = shared.with_read(|idx| idx.original_vertex_count()) as u64;
        for _ in 0..3 {
            let (a, b) = (VertexId(rng(n) as u32), VertexId(rng(n) as u32));
            if a != b {
                window.push(GraphUpdate::InsertEdge(a, b));
            }
        }
        let edges = shared.with_read(|idx| idx.original_graph().edge_vec());
        if !edges.is_empty() {
            let (a, b) = edges[rng(edges.len() as u64) as usize];
            window.push(GraphUpdate::RemoveEdge(VertexId(a), VertexId(b)));
        }
        shared.apply_batch(&window).unwrap();

        if round % REJUVENATE_EVERY == REJUVENATE_EVERY - 1 {
            shared.begin_rejuvenation().unwrap();
            while shared.maintain(2).unwrap() != MaintenanceStatus::Serving {
                // One extra queued write per step, so replay is non-empty.
                let v = VertexId(rng(n) as u32);
                let w = VertexId(rng(n) as u32);
                if v != w {
                    shared
                        .apply_batch(&[GraphUpdate::InsertEdge(v, w)])
                        .unwrap();
                }
            }
        }
    }

    // Drain: the final published snapshot must carry *every* applied
    // write (nothing lost between the engine and the snapshot slot) and
    // the live index must verify clean, structurally and semantically.
    shared.refresh();
    assert_eq!(shared.snapshot_stats().pending_updates, 0);
    let snap = shared.snapshot();
    shared.with_read(|idx| {
        assert_eq!(
            snap.updates_applied(),
            (idx.stats().insertions + idx.stats().deletions) as u64,
            "published watermark lags the engine"
        );
        for v in idx.original_graph().vertices() {
            assert_eq!(snap.query(v), idx.query(v), "final snapshot SCCnt({v})");
        }
        verify_index(idx).unwrap();
    });

    stop.store(true, Ordering::Relaxed);
    for (r, handle) in readers.into_iter().enumerate() {
        let grabbed = handle.join().expect("reader thread panicked");
        assert!(grabbed > 0, "reader {r} never observed a snapshot");
    }
}
