//! Property-based validation of dynamic maintenance: an index maintained
//! through an arbitrary interleaving of insertions and deletions must
//! answer exactly like an index built from scratch on the final graph —
//! and like the BFS oracle — under both update strategies.

use csc::graph::generators;
use csc::graph::traversal::shortest_cycle_oracle;
use csc::index::verify::verify_index;
use csc::prelude::*;
use proptest::prelude::*;

/// A scripted update: insert or delete, with index-driven operand choice.
#[derive(Clone, Debug)]
enum Op {
    Insert(u64),
    Delete(u64),
}

fn arb_ops(len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            any::<u64>().prop_map(Op::Insert),
            any::<u64>().prop_map(Op::Delete)
        ],
        1..len,
    )
}

/// Applies an op script to both a plain graph and a maintained index.
fn apply_ops(g: &mut DiGraph, index: &mut CscIndex, ops: &[Op]) {
    let n = g.vertex_count() as u64;
    for op in ops {
        match *op {
            Op::Insert(seed) => {
                // Derive a fresh non-edge deterministically from the seed.
                let mut s = seed;
                for _ in 0..20 {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let a = VertexId((s % n) as u32);
                    let b = VertexId(((s >> 17) % n) as u32);
                    if a != b && !g.has_edge(a, b) {
                        g.try_add_edge(a, b).unwrap();
                        index.insert_edge(a, b).unwrap();
                        break;
                    }
                }
            }
            Op::Delete(seed) => {
                if g.edge_count() == 0 {
                    continue;
                }
                let edges = g.edge_vec();
                let (u, w) = edges[(seed % edges.len() as u64) as usize];
                g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
                index.remove_edge(VertexId(u), VertexId(w)).unwrap();
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn maintained_index_equals_rebuild(
        n in 6usize..20,
        m_seed in any::<u64>(),
        ops in arb_ops(16),
    ) {
        let m = (m_seed as usize) % (n * (n - 1) / 2 + 1);
        let mut g = generators::gnm(n, m, m_seed);
        let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
        apply_ops(&mut g, &mut index, &ops);

        let rebuilt = CscIndex::build(&g, CscConfig::default()).unwrap();
        for v in g.vertices() {
            let got = index.query(v);
            prop_assert_eq!(got, rebuilt.query(v), "vs rebuild at {}", v);
            prop_assert_eq!(
                got.map(|c| (c.length, c.count)),
                shortest_cycle_oracle(&g, v),
                "vs oracle at {}", v
            );
        }
        prop_assert_eq!(index.original_graph(), g);
    }

    #[test]
    fn minimality_strategy_full_invariants(
        n in 6usize..16,
        m_seed in any::<u64>(),
        ops in arb_ops(10),
    ) {
        let m = (m_seed as usize) % (n * 2 + 1);
        let mut g = generators::gnm(n, m, m_seed);
        let config = CscConfig::default().with_update_strategy(UpdateStrategy::Minimality);
        let mut index = CscIndex::build(&g, config).unwrap();
        apply_ops(&mut g, &mut index, &ops);
        // verify_index checks minimality (no dominated entries), inverted
        // consistency, and oracle equivalence in one sweep.
        prop_assert!(verify_index(&index).is_ok(), "{:?}", verify_index(&index));
    }

    #[test]
    fn redundancy_strategy_oracle_equivalence_under_storm(
        ops in arb_ops(24),
        seed in any::<u64>(),
    ) {
        // A denser, cycle-rich starting point.
        let mut g = generators::preferential_attachment(14, 2, 0.6, seed);
        let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
        apply_ops(&mut g, &mut index, &ops);
        prop_assert!(verify_index(&index).is_ok(), "{:?}", verify_index(&index));
    }

    #[test]
    fn every_ordering_strategy_survives_churn(
        n in 6usize..16,
        m_seed in any::<u64>(),
        ops in arb_ops(12),
        seed in any::<u64>(),
    ) {
        // The repair paths consult ranks on every hop; an index built
        // under any strategy — the sampled coverage order included —
        // must stay oracle-exact through arbitrary churn.
        let m = (m_seed as usize) % (n * 2 + 1);
        let orders = [
            OrderingStrategy::Degree,
            OrderingStrategy::DegreeProduct,
            OrderingStrategy::Identity,
            OrderingStrategy::Random(seed),
            OrderingStrategy::coverage(seed),
        ];
        for order in orders {
            let mut g = generators::gnm(n, m, m_seed);
            let mut index =
                CscIndex::build(&g, CscConfig::default().with_order(order)).unwrap();
            apply_ops(&mut g, &mut index, &ops);
            for v in g.vertices() {
                prop_assert_eq!(
                    index.query(v).map(|c| (c.length, c.count)),
                    shortest_cycle_oracle(&g, v),
                    "order {:?} diverged from oracle at {}", order, v
                );
            }
        }
    }

    #[test]
    fn vertex_growth_interleaves_with_updates(
        ops in arb_ops(10),
        extra in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut g = generators::gnm(8, 16, seed);
        let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
        for _ in 0..extra {
            let nv = index.add_vertex();
            let gv = g.add_vertex();
            prop_assert_eq!(nv, gv);
            // Wire the new vertex into a cycle.
            let t = VertexId(seed as u32 % (nv.0));
            g.try_add_edge(nv, t).unwrap();
            index.insert_edge(nv, t).unwrap();
            g.try_add_edge(t, nv).unwrap();
            index.insert_edge(t, nv).unwrap();
        }
        apply_ops(&mut g, &mut index, &ops);
        let rebuilt = CscIndex::build(&g, CscConfig::default()).unwrap();
        for v in g.vertices() {
            prop_assert_eq!(index.query(v), rebuilt.query(v), "at {}", v);
        }
    }
}

/// Deterministic long-haul: 150 interleaved updates on a mid-size graph,
/// audited against a rebuild at the end (kept out of proptest so the
/// runtime stays bounded).
#[test]
fn long_update_storm_matches_rebuild() {
    let mut g = generators::preferential_attachment(60, 2, 0.4, 77);
    let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
    let mut s: u64 = 0xC5C;
    let mut inserted = 0;
    let mut deleted = 0;
    while inserted + deleted < 150 {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        if s.is_multiple_of(2) && g.edge_count() > 30 {
            let edges = g.edge_vec();
            let (u, w) = edges[(s >> 8) as usize % edges.len()];
            g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
            index.remove_edge(VertexId(u), VertexId(w)).unwrap();
            deleted += 1;
        } else {
            let a = VertexId(((s >> 13) % 60) as u32);
            let b = VertexId(((s >> 29) % 60) as u32);
            if a != b && !g.has_edge(a, b) {
                g.try_add_edge(a, b).unwrap();
                index.insert_edge(a, b).unwrap();
                inserted += 1;
            }
        }
    }
    assert!(inserted > 30 && deleted > 30, "storm exercised both paths");
    let rebuilt = CscIndex::build(&g, CscConfig::default()).unwrap();
    for v in g.vertices() {
        assert_eq!(index.query(v), rebuilt.query(v), "diverged at {v}");
    }
    // The maintained index may carry dominated entries (redundancy mode),
    // so sizes may differ; behaviour may not.
    assert_eq!(index.stats().insertions, inserted);
    assert_eq!(index.stats().deletions, deleted);
}
