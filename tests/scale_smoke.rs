//! Medium-scale smoke tests: the full pipeline on thousands-of-edges
//! graphs, sampled against the BFS baseline (full oracle sweeps would
//! dominate CI time).

use csc::graph::generators;
use csc::graph::properties::{degree_clusters, DegreeCluster};
use csc::prelude::*;

fn spot_check(g: &DiGraph, index: &CscIndex, sample_every: usize) {
    let mut bfs = BfsCycleEngine::new(g.vertex_count());
    for v in g.vertices().step_by(sample_every) {
        assert_eq!(
            index.query(v),
            bfs.query(g, v),
            "SCCnt({v}) diverged from BFS"
        );
    }
}

#[test]
fn five_thousand_edge_power_law() {
    let g = generators::preferential_attachment(2_000, 2, 0.3, 404);
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    assert!(index.total_entries() > 0);
    spot_check(&g, &index, 7);
}

#[test]
fn p2p_flat_graph_with_update_batch() {
    let mut g = generators::gnm(1_200, 4_800, 21);
    let mut index = CscIndex::build(&g, CscConfig::default()).unwrap();
    // Paper protocol in miniature: remove 25 random edges, re-insert.
    let victims: Vec<_> = g.edge_vec().into_iter().step_by(191).take(25).collect();
    for &(u, w) in &victims {
        g.try_remove_edge(VertexId(u), VertexId(w)).unwrap();
        index.remove_edge(VertexId(u), VertexId(w)).unwrap();
    }
    for &(u, w) in &victims {
        g.try_add_edge(VertexId(u), VertexId(w)).unwrap();
        index.insert_edge(VertexId(u), VertexId(w)).unwrap();
    }
    spot_check(&g, &index, 11);
}

#[test]
fn small_world_ring_has_long_cycles() {
    let g = generators::small_world(800, 2, 0.05, 5);
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    // Rewiring leaves most vertices on short local cycles or the long ring;
    // every answer must match BFS regardless.
    spot_check(&g, &index, 13);
}

#[test]
fn degree_clusters_all_answer() {
    // The Figure 10 protocol end-to-end: every cluster must produce
    // consistent answers.
    let g = generators::preferential_attachment(1_500, 3, 0.4, 9);
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    let clusters = degree_clusters(&g);
    let mut bfs = BfsCycleEngine::new(g.vertex_count());
    for target in DegreeCluster::ALL {
        let mut checked = 0;
        for v in g.vertices() {
            if clusters[v.index()] == target {
                assert_eq!(
                    index.query(v),
                    bfs.query(&g, v),
                    "cluster {target:?} at {v}"
                );
                checked += 1;
                if checked >= 25 {
                    break;
                }
            }
        }
    }
}

#[test]
fn serialization_at_scale() {
    let g = generators::preferential_attachment(1_000, 2, 0.2, 31);
    let index = CscIndex::build(&g, CscConfig::default()).unwrap();
    let bytes = index.to_bytes().unwrap();
    // 8 bytes per entry plus headers/adjacency: sanity-check the ballpark.
    assert!(bytes.len() > index.total_entries() * 8);
    let restored = CscIndex::from_bytes(&bytes).unwrap();
    spot_check(&g, &restored, 17);
}

#[test]
fn concurrent_screening_under_churn() {
    use std::sync::Arc;
    let g = generators::preferential_attachment(800, 2, 0.5, 12);
    let shared = Arc::new(ConcurrentIndex::new(
        CscIndex::build(&g, CscConfig::default()).unwrap(),
    ));
    let readers: Vec<_> = (0..3)
        .map(|t| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                let mut hits = 0;
                for i in 0..3_000u32 {
                    if shared.query(VertexId((i * 31 + t) % 800)).is_some() {
                        hits += 1;
                    }
                }
                hits
            })
        })
        .collect();
    let mut live = g.clone();
    let mut s = 5u64;
    for _ in 0..20 {
        s = s.wrapping_mul(48271);
        let a = VertexId((s % 800) as u32);
        let b = VertexId(((s >> 11) % 800) as u32);
        if a != b && !live.has_edge(a, b) {
            live.try_add_edge(a, b).unwrap();
            shared.insert_edge(a, b).unwrap();
        }
    }
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
    let final_index = CscIndex::build(&live, CscConfig::default()).unwrap();
    shared.with_read(|idx| {
        for v in live.vertices().step_by(9) {
            assert_eq!(idx.query(v), final_index.query(v));
        }
    });
}
